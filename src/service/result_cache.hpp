/**
 * @file
 * Content-addressed cache of compile results for the compile service.
 *
 * Keyed by (canonical circuit hash, architecture fingerprint, options
 * digest): three inputs that together determine a ZacStreamedResult bit for bit,
 * because the compiler is deterministic. A hit therefore serves the
 * exact bytes a recompile would produce.
 */

#ifndef ZAC_SERVICE_RESULT_CACHE_HPP
#define ZAC_SERVICE_RESULT_CACHE_HPP

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "core/compiler.hpp"

namespace zac::service
{

/** The three-component content address of one compile result. */
struct CacheKey
{
    std::uint64_t circuit_hash = 0;     ///< Circuit::contentHash()
    std::uint64_t arch_fingerprint = 0; ///< architectureFingerprint()
    std::uint64_t options_digest = 0;   ///< ZacOptions::digest()

    friend bool operator==(const CacheKey &, const CacheKey &) = default;

    /** Fold the three components into one 64-bit bucket hash. */
    std::uint64_t
    mixed() const
    {
        return hashCombine(hashCombine(circuit_hash, arch_fingerprint),
                           options_digest);
    }
};

/** std::unordered_map adaptor for CacheKey. */
struct CacheKeyHash
{
    std::size_t
    operator()(const CacheKey &k) const
    {
        return static_cast<std::size_t>(k.mixed());
    }
};

/**
 * Sharded LRU cache from CacheKey to an immutable shared ZacStreamedResult.
 *
 * Shards are independent (key -> shard by hash), so concurrent workers
 * rarely contend on one mutex. Each shard evicts least-recently-used
 * entries beyond its share of the capacity. Capacity 0 disables the
 * cache entirely (every find misses, inserts are dropped), which the
 * perf harness uses to measure raw compile throughput.
 */
class ResultCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
        std::size_t entries = 0;

        double
        hitRate() const
        {
            const std::uint64_t total = hits + misses;
            return total == 0
                       ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(total);
        }
    };

    /**
     * @param capacity   max cached results across all shards (0 = off).
     * @param num_shards lock shards; rounded up to at least 1.
     */
    explicit ResultCache(std::size_t capacity, std::size_t num_shards = 8);

    bool enabled() const { return capacity_ > 0; }
    std::size_t capacity() const { return capacity_; }

    /**
     * Look up @p key, refreshing its LRU position.
     * @return the cached result, or nullptr on a miss.
     */
    std::shared_ptr<const ZacStreamedResult> find(const CacheKey &key);

    /**
     * Insert @p result under @p key.
     *
     * If another worker already published a result for the key, that
     * first entry wins and is returned (results for equal keys are
     * bit-identical anyway, so either object is correct — keeping the
     * incumbent just preserves sharing with earlier consumers).
     */
    std::shared_ptr<const ZacStreamedResult> insert(
        const CacheKey &key, std::shared_ptr<const ZacStreamedResult> result);

    /** Aggregate statistics over all shards. */
    Stats stats() const;

    /**
     * Copy out every (key, result) pair, shard by shard, MRU first
     * within each shard. The order is deterministic for a given access
     * history; the cache-store snapshot writer relies on that so two
     * snapshots of the same state are byte-identical.
     */
    std::vector<std::pair<CacheKey, std::shared_ptr<const ZacStreamedResult>>>
    entries() const;

    /** Drop every entry (statistics are kept). */
    void clear();

  private:
    struct Shard
    {
        mutable std::mutex m;
        /** MRU-first list of (key, result). */
        std::list<std::pair<CacheKey, std::shared_ptr<const ZacStreamedResult>>>
            lru;
        std::unordered_map<CacheKey, decltype(lru)::iterator,
                           CacheKeyHash>
            map;
        Stats stats;
    };

    Shard &shardFor(const CacheKey &key);

    std::size_t capacity_;
    std::size_t shard_capacity_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace zac::service

#endif // ZAC_SERVICE_RESULT_CACHE_HPP
