#include "service/fault_injection.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/hash.hpp"
#include "common/logging.hpp"

namespace zac::service
{

namespace
{

/**
 * One deterministic 64-bit draw for a (plan, job, attempt, channel)
 * tuple. splitmix64 finalization on top of FNV gives well-mixed high
 * bits, so the [0,1) mapping below is unbiased enough for rates.
 */
std::uint64_t
draw(std::uint64_t seed, std::uint64_t job_id, int attempt,
     std::uint64_t channel)
{
    Fnv1a h;
    h.u64(seed);
    h.u64(job_id);
    h.i64(attempt);
    h.u64(channel);
    std::uint64_t z = h.digest() + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Map one draw to [0, 1). */
double
unit(std::uint64_t u)
{
    return static_cast<double>(u >> 11) * 0x1.0p-53;
}

} // namespace

bool
FaultPlan::shouldThrow(std::uint64_t job_id, int attempt) const
{
    return throw_rate > 0.0 &&
           unit(draw(seed, job_id, attempt, 1)) < throw_rate;
}

bool
FaultPlan::shouldCancel(std::uint64_t job_id, int attempt) const
{
    return cancel_rate > 0.0 &&
           unit(draw(seed, job_id, attempt, 2)) < cancel_rate;
}

int
FaultPlan::cancelPhase(std::uint64_t job_id, int attempt) const
{
    // The compile checkpoints five phases (preprocess, sa, placement,
    // scheduling, fidelity); pick one uniformly.
    return static_cast<int>(draw(seed, job_id, attempt, 3) % 5);
}

bool
FaultPlan::shouldStall(std::uint64_t job_id, int attempt) const
{
    return stall_rate > 0.0 &&
           unit(draw(seed, job_id, attempt, 4)) < stall_rate;
}

std::optional<FaultPlan>
FaultPlan::fromEnv()
{
    const char *seed_s = std::getenv("ZAC_SERVICE_FAULT_SEED");
    const char *throw_s = std::getenv("ZAC_SERVICE_FAULT_THROW_RATE");
    const char *cancel_s = std::getenv("ZAC_SERVICE_FAULT_CANCEL_RATE");
    const char *stall_s = std::getenv("ZAC_SERVICE_FAULT_STALL_RATE");
    const char *stall_ms_s = std::getenv("ZAC_SERVICE_FAULT_STALL_MS");
    if (!seed_s && !throw_s && !cancel_s && !stall_s && !stall_ms_s)
        return std::nullopt;

    FaultPlan plan;
    if (seed_s)
        plan.seed = std::strtoull(seed_s, nullptr, 0);
    if (throw_s)
        plan.throw_rate = std::strtod(throw_s, nullptr);
    if (cancel_s)
        plan.cancel_rate = std::strtod(cancel_s, nullptr);
    if (stall_s)
        plan.stall_rate = std::strtod(stall_s, nullptr);
    if (stall_ms_s)
        plan.stall_ms = std::strtod(stall_ms_s, nullptr);
    warn("CompileService: ZAC_SERVICE_FAULT_* fault injection armed "
         "(seed " + std::to_string(plan.seed) + ", throw " +
         std::to_string(plan.throw_rate) + ", cancel " +
         std::to_string(plan.cancel_rate) + ", stall " +
         std::to_string(plan.stall_rate) + ")");
    return plan;
}

void
corruptSnapshotFile(const std::string &path, SnapshotCorruption mode,
                    std::uint64_t seed)
{
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            fatal("corruptSnapshotFile: cannot read " + path);
        std::ostringstream ss;
        ss << in.rdbuf();
        bytes = ss.str();
    }

    switch (mode) {
      case SnapshotCorruption::Empty:
        bytes.clear();
        break;
      case SnapshotCorruption::Truncate:
        // Cut inside the last record, past the header line, as a crash
        // mid-write would.
        if (!bytes.empty())
            bytes.resize(bytes.size() -
                         std::min<std::size_t>(bytes.size() / 4 + 1,
                                               bytes.size() - 1));
        break;
      case SnapshotCorruption::FlipByte: {
        if (bytes.empty())
            break;
        // Flip a byte after the header line so the header still parses
        // and the damage lands in a record's payload or checksum.
        const std::size_t header_end = bytes.find('\n');
        const std::size_t lo =
            header_end == std::string::npos ? 0 : header_end + 1;
        if (lo >= bytes.size())
            break;
        const std::size_t at =
            lo + draw(seed, 0, 0, 5) % (bytes.size() - lo);
        // XOR with 0x01, not 0x20: a case flip can be semantically
        // invisible (hex strings parse case-insensitively, float
        // exponents re-dump as 'e'), while the low bit always changes
        // a digit's value or breaks the token. Avoid turning a newline
        // into data (that would merge lines and hide the corruption as
        // a parse error on a different record).
        if (bytes[at] != '\n')
            bytes[at] = static_cast<char>(bytes[at] ^ 0x01);
        else if (at + 1 < bytes.size())
            bytes[at + 1] = static_cast<char>(bytes[at + 1] ^ 0x01);
        break;
      }
      case SnapshotCorruption::WrongVersion: {
        const std::size_t header_end = bytes.find('\n');
        const std::string rest = header_end == std::string::npos
                                     ? std::string()
                                     : bytes.substr(header_end + 1);
        bytes = "{\"type\":\"zac_cache_snapshot\",\"version\":999}\n" +
                rest;
        break;
      }
    }

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("corruptSnapshotFile: cannot write " + path);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

} // namespace zac::service
