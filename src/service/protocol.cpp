#include "service/protocol.hpp"

#include <cinttypes>
#include <cstdio>

namespace zac::service
{

namespace
{

/**
 * 64-bit hashes are emitted as fixed-width hex strings: the JSON layer
 * stores numbers as double, which cannot represent every uint64.
 */
std::string
hashString(std::uint64_t h)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, h);
    return buf;
}

} // namespace

json::Value
makeSubmitRecord(std::uint64_t job_id, const std::string &name,
                 const std::string &target_name,
                 std::uint64_t circuit_hash)
{
    json::Object o;
    o["type"] = "submit";
    o["job_id"] = static_cast<std::int64_t>(job_id);
    o["circuit"] = name;
    o["target"] = target_name;
    o["circuit_hash"] = hashString(circuit_hash);
    return o;
}

json::Value
makeJobRecord(const JobRecord &record, const std::string &target_name,
              bool include_zair)
{
    json::Object o;
    o["job_id"] = static_cast<std::int64_t>(record.job_id);
    o["circuit"] = record.name;
    o["target"] = target_name;
    o["status"] = jobStatusName(record.status);
    o["attempts"] = record.attempts;
    o["cache_hit"] = record.cache_hit;
    o["circuit_hash"] = hashString(record.circuit_hash);
    o["queue_seconds"] = record.queue_seconds;
    o["service_seconds"] = record.service_seconds;

    if (record.status != JobStatus::Done) {
        o["type"] = "error";
        if (!record.error.empty())
            o["error"] = record.error;
        return o;
    }

    o["type"] = "result";
    const ZacStreamedResult &r = *record.result;
    o["compile_seconds"] = r.compile_seconds;
    o["phase_seconds"] = json::Object{
        {"sa", r.phases.sa_seconds},
        {"placement", r.phases.placement_seconds},
        {"scheduling", r.phases.scheduling_seconds},
        {"fidelity", r.phases.fidelity_seconds},
    };
    o["fidelity"] = r.fidelity.total;
    o["makespan_us"] = r.stats.makespan_us;
    // Named "stats" (not "zair_stats") so "zair" is the
    // lexicographically last key: writeJobRecordJsonl() relies on
    // that to append the streamed program at the end of the line.
    o["stats"] = json::Object{
        {"instructions", r.stats.num_zair_instrs},
        {"rydberg_stages", r.stats.num_rydberg_stages},
        {"rearrange_jobs", r.stats.num_rearrange_jobs},
        {"atom_transfers", r.stats.num_atom_transfers},
        {"move_distance_um", r.stats.total_move_distance_um},
    };
    if (include_zair)
        o["zair"] = json::parse(r.program_json);
    return o;
}

void
writeJobRecordJsonl(std::ostream &out, const JobRecord &record,
                    const std::string &target_name, bool include_zair)
{
    const bool with_zair =
        include_zair && record.status == JobStatus::Done;
    // Build the (small) record DOM without the program, then splice
    // the streamed result's verbatim compact bytes into the line — no
    // program DOM is ever parsed or re-dumped on this path. "zair"
    // sorts after every other key, so appending it before the closing
    // brace yields byte-identical output to the DOM path (unit-tested).
    std::string head =
        makeJobRecord(record, target_name, false).dump();
    if (!with_zair) {
        out << head << '\n';
        return;
    }
    head.pop_back(); // drop '}'
    out << head << ",\"zair\":" << record.result->program_json
        << "}\n";
}

json::Value
makeStatsRecord(const CompileService::ServiceStats &stats)
{
    json::Object o;
    o["type"] = "stats";
    const CompileService::Stats &c = stats.counters;
    o["counters"] = json::Object{
        {"submitted", static_cast<std::int64_t>(c.submitted)},
        {"delivered", static_cast<std::int64_t>(c.delivered)},
        {"overloaded", static_cast<std::int64_t>(c.overloaded)},
        {"transient_failures",
         static_cast<std::int64_t>(c.transient_failures)},
        {"retries", static_cast<std::int64_t>(c.retries)},
        {"retries_exhausted",
         static_cast<std::int64_t>(c.retries_exhausted)},
        {"coalesced_served",
         static_cast<std::int64_t>(c.coalesced_served)},
        {"coalesced_requeued",
         static_cast<std::int64_t>(c.coalesced_requeued)},
    };
    o["cache"] = json::Object{
        {"hits", static_cast<std::int64_t>(stats.cache.hits)},
        {"misses", static_cast<std::int64_t>(stats.cache.misses)},
        {"insertions",
         static_cast<std::int64_t>(stats.cache.insertions)},
        {"evictions",
         static_cast<std::int64_t>(stats.cache.evictions)},
        {"entries", static_cast<std::int64_t>(stats.cache.entries)},
    };
    o["warm_contexts"] = json::Object{
        {"hits", static_cast<std::int64_t>(stats.warm.hits)},
        {"misses", static_cast<std::int64_t>(stats.warm.misses)},
        {"evictions",
         static_cast<std::int64_t>(stats.warm.evictions)},
        {"entries", static_cast<std::int64_t>(stats.warm.entries)},
        {"build_seconds", stats.warm.build_seconds},
    };
    o["workers"] = stats.workers;
    o["uptime_seconds"] = stats.uptime_seconds;
    return o;
}

std::string
toJsonl(const json::Value &v)
{
    return v.dump() + "\n";
}

} // namespace zac::service
