#include "service/cache_store.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/hash.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "zair/serialize.hpp"

namespace zac::service
{

namespace
{

std::string
hexString(std::uint64_t h)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, h);
    return buf;
}

std::uint64_t
parseHex(const std::string &s)
{
    return std::strtoull(s.c_str(), nullptr, 16);
}

/**
 * Record checksum over the key AND the payload bytes: a flipped bit in
 * either must invalidate the record (a valid payload under a mutated
 * key would serve the wrong bytes for that key, which is worse than a
 * skip).
 */
std::uint64_t
recordChecksum(const CacheKey &key, const std::string &payload)
{
    Fnv1a h;
    h.u64(key.circuit_hash);
    h.u64(key.arch_fingerprint);
    h.u64(key.options_digest);
    h.str(payload);
    return h.digest();
}

/** The protocol-visible surface of one ZacStreamedResult as JSON. */
json::Value
payloadFromResult(const ZacStreamedResult &r)
{
    json::Object p;
    p["compile_seconds"] = r.compile_seconds;
    p["phases"] = json::Object{
        {"sa", r.phases.sa_seconds},
        {"placement", r.phases.placement_seconds},
        {"scheduling", r.phases.scheduling_seconds},
        {"fidelity", r.phases.fidelity_seconds},
    };
    const FidelityBreakdown &f = r.fidelity;
    p["fidelity"] = json::Object{
        {"f_1q", f.f_1q},
        {"f_2q_gates", f.f_2q_gates},
        {"f_excitation", f.f_excitation},
        {"f_2q", f.f_2q},
        {"f_transfer", f.f_transfer},
        {"f_decoherence", f.f_decoherence},
        {"total", f.total},
        {"g1", f.g1},
        {"g2", f.g2},
        {"n_excitation", f.n_excitation},
        {"n_transfer", f.n_transfer},
        {"duration_us", f.duration_us},
    };
    const ZairStats &s = r.stats;
    p["stats"] = json::Object{
        {"num_zair_instrs", s.num_zair_instrs},
        {"num_machine_instrs", s.num_machine_instrs},
        {"num_1q_gates", s.num_1q_gates},
        {"num_2q_gates", s.num_2q_gates},
        {"num_rydberg_stages", s.num_rydberg_stages},
        {"num_rearrange_jobs", s.num_rearrange_jobs},
        {"num_atom_transfers", s.num_atom_transfers},
        {"total_move_distance_um", s.total_move_distance_um},
        {"makespan_us", s.makespan_us},
    };
    p["circuit_name"] = r.circuit_name;
    p["arch_name"] = r.arch_name;
    p["num_qubits"] = r.num_qubits;
    // Verbatim compact bytes, not a re-parsed object: a loaded hit
    // must serve the exact bytes the streamed compile produced.
    p["zair_json"] = r.program_json;
    return p;
}

/** Inverse of payloadFromResult; throws on shape mismatches. */
std::shared_ptr<const ZacStreamedResult>
resultFromPayload(const json::Value &p)
{
    auto r = std::make_shared<ZacStreamedResult>();
    r->compile_seconds = p.at("compile_seconds").asDouble();
    const json::Value &ph = p.at("phases");
    r->phases.sa_seconds = ph.at("sa").asDouble();
    r->phases.placement_seconds = ph.at("placement").asDouble();
    r->phases.scheduling_seconds = ph.at("scheduling").asDouble();
    r->phases.fidelity_seconds = ph.at("fidelity").asDouble();
    const json::Value &f = p.at("fidelity");
    r->fidelity.f_1q = f.at("f_1q").asDouble();
    r->fidelity.f_2q_gates = f.at("f_2q_gates").asDouble();
    r->fidelity.f_excitation = f.at("f_excitation").asDouble();
    r->fidelity.f_2q = f.at("f_2q").asDouble();
    r->fidelity.f_transfer = f.at("f_transfer").asDouble();
    r->fidelity.f_decoherence = f.at("f_decoherence").asDouble();
    r->fidelity.total = f.at("total").asDouble();
    r->fidelity.g1 = static_cast<int>(f.at("g1").asInt());
    r->fidelity.g2 = static_cast<int>(f.at("g2").asInt());
    r->fidelity.n_excitation =
        static_cast<int>(f.at("n_excitation").asInt());
    r->fidelity.n_transfer =
        static_cast<int>(f.at("n_transfer").asInt());
    r->fidelity.duration_us = f.at("duration_us").asDouble();
    const json::Value &s = p.at("stats");
    r->stats.num_zair_instrs =
        static_cast<int>(s.at("num_zair_instrs").asInt());
    r->stats.num_machine_instrs =
        static_cast<int>(s.at("num_machine_instrs").asInt());
    r->stats.num_1q_gates =
        static_cast<int>(s.at("num_1q_gates").asInt());
    r->stats.num_2q_gates =
        static_cast<int>(s.at("num_2q_gates").asInt());
    r->stats.num_rydberg_stages =
        static_cast<int>(s.at("num_rydberg_stages").asInt());
    r->stats.num_rearrange_jobs =
        static_cast<int>(s.at("num_rearrange_jobs").asInt());
    r->stats.num_atom_transfers =
        static_cast<int>(s.at("num_atom_transfers").asInt());
    r->stats.total_move_distance_um =
        s.at("total_move_distance_um").asDouble();
    r->stats.makespan_us = s.at("makespan_us").asDouble();
    r->circuit_name = p.at("circuit_name").asString();
    r->arch_name = p.at("arch_name").asString();
    r->num_qubits = static_cast<int>(p.at("num_qubits").asInt());
    r->program_json = p.at("zair_json").asString();
    // Re-derive the name span and hold the record to it: a snapshot
    // whose bytes disagree with its own names must not be served (the
    // rebind-by-splice path would corrupt the JSON).
    const ZairNameSpan span =
        zairCompactNameSpan(r->circuit_name, r->arch_name);
    r->name_off = span.offset;
    r->name_len = span.length;
    if (r->program_json.compare(
            r->name_off, r->name_len,
            json::Value(r->circuit_name).dump()) != 0)
        throw std::runtime_error(
            "cache snapshot: name span mismatch in zair_json");
    return r;
}

} // namespace

std::size_t
saveCacheSnapshot(const std::string &path, const ResultCache &cache)
{
    const auto entries = cache.entries();
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("saveCacheSnapshot: cannot write " + tmp);

        json::Object header;
        header["type"] = "zac_cache_snapshot";
        header["version"] = kCacheSnapshotVersion;
        header["records"] = entries.size();
        out << json::Value(std::move(header)).dump() << '\n';

        for (const auto &[key, result] : entries) {
            const std::string payload =
                payloadFromResult(*result).dump();
            // Assemble the line around the pre-dumped payload so the
            // checksum is computed over the exact bytes a loader will
            // re-dump after parsing.
            out << "{\"checksum\":\""
                << hexString(recordChecksum(key, payload))
                << "\",\"key\":[\"" << hexString(key.circuit_hash)
                << "\",\"" << hexString(key.arch_fingerprint)
                << "\",\"" << hexString(key.options_digest)
                << "\"],\"payload\":" << payload
                << ",\"type\":\"entry\"}\n";
        }
        out.flush();
        if (!out)
            fatal("saveCacheSnapshot: write failed for " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("saveCacheSnapshot: cannot rename " + tmp + " -> " +
              path);
    return entries.size();
}

SnapshotLoadStats
loadCacheSnapshot(const std::string &path, ResultCache &cache)
{
    SnapshotLoadStats stats;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return stats;
    stats.file_found = true;

    std::string line;
    bool saw_header = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (!saw_header) {
            saw_header = true;
            try {
                const json::Value h = json::parse(line);
                stats.header_ok =
                    h.at("type").asString() == "zac_cache_snapshot" &&
                    h.at("version").asInt() == kCacheSnapshotVersion;
            } catch (const std::exception &) {
                stats.header_ok = false;
            }
            if (!stats.header_ok) {
                // Unknown version or damaged header: the record layout
                // cannot be trusted, count the rest as skipped.
                while (std::getline(in, line))
                    if (!line.empty())
                        ++stats.skipped_version;
                break;
            }
            continue;
        }
        try {
            const json::Value rec = json::parse(line);
            if (rec.at("type").asString() != "entry") {
                ++stats.skipped_corrupt;
                continue;
            }
            const json::Value &payload = rec.at("payload");
            const json::Value &k = rec.at("key");
            const CacheKey key{parseHex(k.at(0).asString()),
                               parseHex(k.at(1).asString()),
                               parseHex(k.at(2).asString())};
            if (parseHex(rec.at("checksum").asString()) !=
                recordChecksum(key, payload.dump())) {
                ++stats.skipped_checksum;
                continue;
            }
            cache.insert(key, resultFromPayload(payload));
            ++stats.records_loaded;
        } catch (const std::exception &) {
            // Parse error, missing field, or malformed program: a
            // truncated tail lands here. Skip, count, keep loading.
            ++stats.skipped_corrupt;
        }
    }
    return stats;
}

} // namespace zac::service
