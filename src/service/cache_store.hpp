/**
 * @file
 * Disk persistence for the compile-service result cache: warm starts
 * across restarts.
 *
 * The cache key (circuit content hash, architecture fingerprint,
 * options digest) is relocatable — nothing in it refers to this
 * process, machine, or run — so a snapshot written by one service
 * instance can be loaded by any other and will serve the exact bytes a
 * fresh compile would produce.
 *
 * Snapshot format: JSONL. Line 1 is a versioned header
 *
 *   {"type":"zac_cache_snapshot","version":2,"records":N}
 *
 * and every following line is one cache entry
 *
 *   {"type":"entry","key":["0x..","0x..","0x.."],
 *    "checksum":"0x..","payload":{...}}
 *
 * where `checksum` is the FNV-1a digest of the compact-dumped payload.
 * The payload restores the protocol-visible surface of a
 * ZacStreamedResult: the compact ZAIR/JSON bytes verbatim (as the
 * `zair_json` string — the exact bytes the streamed compile produced),
 * the complete fidelity breakdown and program statistics (exact bit
 * patterns survive because numbers serialize with %.17g and parse back
 * to the identical double), the phase timings of the original compile,
 * and the circuit/architecture names. The loader re-derives the
 * circuit-name byte span from the names and rejects a record whose
 * bytes disagree (skipped_corrupt). Version-1 snapshots (which
 * persisted the ZAIR program as a JSON object for the retired DOM
 * result shape) are skipped wholesale as skipped_version — a cold
 * start, never a misread.
 *
 * Writes are crash-safe: the snapshot is written to `<path>.tmp` and
 * atomically renamed over the target, so readers only ever observe a
 * complete old file or a complete new file. The loader is the reverse
 * tolerance: a truncated tail, a corrupted record, or a stale header
 * version skips (and counts) the damaged part instead of failing the
 * service start — a broken snapshot costs warm-start hits, never
 * availability.
 */

#ifndef ZAC_SERVICE_CACHE_STORE_HPP
#define ZAC_SERVICE_CACHE_STORE_HPP

#include <cstddef>
#include <string>

#include "service/result_cache.hpp"

namespace zac::service
{

/** Snapshot-file format version written by saveCacheSnapshot(). */
inline constexpr int kCacheSnapshotVersion = 2;

/** What loadCacheSnapshot() found, loaded, and skipped. */
struct SnapshotLoadStats
{
    bool file_found = false;  ///< the path existed and opened
    bool header_ok = false;   ///< header parsed with a known version
    std::size_t records_loaded = 0;   ///< entries inserted in the cache
    std::size_t skipped_checksum = 0; ///< checksum mismatch (bit rot)
    std::size_t skipped_corrupt = 0;  ///< unparseable/truncated lines
    std::size_t skipped_version = 0;  ///< records under a stale header

    std::size_t
    skippedTotal() const
    {
        return skipped_checksum + skipped_corrupt + skipped_version;
    }
};

/**
 * Write every cache entry to @p path (write-temp-then-rename).
 * @return the number of records written.
 * @throws FatalError when the temp file cannot be written or renamed.
 */
std::size_t saveCacheSnapshot(const std::string &path,
                              const ResultCache &cache);

/**
 * Load a snapshot into @p cache (insert-if-absent per entry; existing
 * entries win). Never throws on damaged content: corrupt, truncated,
 * checksum-mismatched, or stale-version records are skipped and
 * counted in the returned stats, and a missing file is simply
 * `file_found == false`.
 */
SnapshotLoadStats loadCacheSnapshot(const std::string &path,
                                    ResultCache &cache);

} // namespace zac::service

#endif // ZAC_SERVICE_CACHE_STORE_HPP
