/**
 * @file
 * The JSONL batch protocol: one compact JSON record per line.
 *
 * Record types:
 *  - "submit": echoes one accepted job (id, circuit label, target,
 *    content hash) — written by frontends that log submissions;
 *  - "result": one finished job with status "done", cache-hit flag,
 *    queue/phase timings, fidelity, and (optionally) the full ZAIR
 *    program;
 *  - "error": one finished job whose status is not "done" (failed,
 *    cancelled, timed_out) with the failure message.
 *  - "stats": one service-health snapshot (counters, cache and
 *    warm-context-pool figures) — written once per run by frontends
 *    that opt in (zac_batch --stats-record); carries no job_id.
 *
 * Records are self-describing ("type" field) and streamed in completion
 * order, which is generally NOT submission order — consumers must key
 * on "job_id".
 */

#ifndef ZAC_SERVICE_PROTOCOL_HPP
#define ZAC_SERVICE_PROTOCOL_HPP

#include <ostream>
#include <string>

#include "common/json.hpp"
#include "service/service.hpp"

namespace zac::service
{

/** Build a "submit" record for an accepted job. */
json::Value makeSubmitRecord(std::uint64_t job_id,
                             const std::string &name,
                             const std::string &target_name,
                             std::uint64_t circuit_hash);

/**
 * Build the terminal record for @p record: a "result" record when the
 * job is Done (with phase timings, fidelity, ZAIR statistics and — when
 * @p include_zair — the full program), an "error" record otherwise.
 */
json::Value makeJobRecord(const JobRecord &record,
                          const std::string &target_name,
                          bool include_zair);

/**
 * Build a "stats" record from one coherent ServiceStats snapshot:
 * the fault-tolerance counters plus cache and warm-context-pool
 * figures, mirroring the zac_serve /healthz body.
 */
json::Value makeStatsRecord(const CompileService::ServiceStats &stats);

/** Serialize @p v as one JSONL line (compact dump + newline). */
std::string toJsonl(const json::Value &v);

/**
 * Write the terminal JSONL line for @p record to @p out, streaming the
 * embedded ZAIR program through ZairStreamWriter instead of copying it
 * into a second DOM. Byte-identical to
 * toJsonl(makeJobRecord(record, target_name, include_zair)); the
 * caller must serialize concurrent writers to @p out (the
 * CompileService sink lock already does).
 */
void writeJobRecordJsonl(std::ostream &out, const JobRecord &record,
                         const std::string &target_name,
                         bool include_zair);

} // namespace zac::service

#endif // ZAC_SERVICE_PROTOCOL_HPP
