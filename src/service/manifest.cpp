#include "service/manifest.hpp"

#include <cmath>

#include "arch/presets.hpp"
#include "arch/serialize.hpp"
#include "circuit/generators.hpp"
#include "circuit/qasm_parser.hpp"
#include "common/logging.hpp"

namespace zac::service
{

namespace
{

Architecture
archFromRef(const std::string &ref, int aods)
{
    if (ref == "reference")
        return presets::referenceZoned(aods);
    if (ref == "monolithic")
        return presets::monolithic();
    if (ref == "arch1")
        return presets::multiZoneArch1();
    if (ref == "arch2")
        return presets::multiZoneArch2();
    // Anything else is a spec-JSON path.
    return loadArchitecture(ref);
}

/**
 * Warn (once per key) about manifest keys the loader does not read: a
 * typo like "sa_numseeds" would otherwise silently fall back to the
 * default, which is the worst failure mode a config file can have.
 */
void
warnUnknownKeys(const json::Value &v,
                std::initializer_list<const char *> known,
                const std::string &context)
{
    for (const auto &[key, value] : v.asObject()) {
        bool ok = false;
        for (const char *k : known)
            if (key == k)
                ok = true;
        if (!ok)
            warn("manifest: " + context + ": unknown key '" + key +
                 "' is ignored");
    }
}

ZacOptions
optionsFromPreset(const std::string &preset)
{
    if (preset == "full")
        return ZacOptions::full();
    if (preset == "vanilla")
        return ZacOptions::vanilla();
    if (preset == "dynplace")
        return ZacOptions::dynPlace();
    if (preset == "dynplace_reuse")
        return ZacOptions::dynPlaceReuse();
    fatal("manifest: unknown option preset '" + preset +
          "' (expected full, vanilla, dynplace, dynplace_reuse)");
}

} // namespace

Circuit
resolveCircuit(const std::string &ref)
{
    const bool is_qasm =
        ref.size() > 5 && ref.substr(ref.size() - 5) == ".qasm";
    return is_qasm ? qasm::parseFile(ref)
                   : bench_circuits::paperBenchmark(ref);
}

CompileTarget
targetFromJson(const json::Value &v)
{
    CompileTarget t;
    t.name = v.contains("name") ? v.at("name").asString() : "default";
    warnUnknownKeys(v,
                    {"name", "arch", "aods", "preset", "seed",
                     "sa_iterations", "sa_num_seeds", "sa_threads"},
                    "target '" + t.name + "'");
    const std::string arch_ref =
        v.contains("arch") ? v.at("arch").asString() : "reference";
    const int aods =
        static_cast<int>(v.numberOr("aods", 1.0));
    t.arch = archFromRef(arch_ref, aods);
    t.opts = optionsFromPreset(
        v.contains("preset") ? v.at("preset").asString() : "full");
    if (v.contains("seed"))
        t.opts.seed =
            static_cast<std::uint64_t>(v.at("seed").asInt());
    if (v.contains("sa_iterations"))
        t.opts.sa_iterations =
            static_cast<int>(v.at("sa_iterations").asInt());
    if (v.contains("sa_num_seeds")) {
        t.opts.sa_num_seeds =
            static_cast<int>(v.at("sa_num_seeds").asInt());
        // The SA engine runs one independent chain per seed; zero
        // chains compute nothing and hundreds burn hours per job.
        if (t.opts.sa_num_seeds < 1 || t.opts.sa_num_seeds > 256)
            fatal("manifest: target '" + t.name +
                  "': sa_num_seeds " +
                  std::to_string(t.opts.sa_num_seeds) +
                  " out of range [1, 256]");
    }
    // Service workers already saturate the cores; default the nested
    // SA seed batch to one thread unless the manifest asks otherwise.
    t.opts.sa_threads = 1;
    if (v.contains("sa_threads"))
        t.opts.sa_threads =
            static_cast<int>(v.at("sa_threads").asInt());
    return t;
}

Manifest
manifestFromJson(const json::Value &v)
{
    Manifest m;
    warnUnknownKeys(v, {"targets", "jobs"}, "top level");

    if (v.contains("targets")) {
        for (const json::Value &tv : v.at("targets").asArray())
            m.targets.push_back(targetFromJson(tv));
        if (m.targets.empty())
            fatal("manifest: 'targets' must not be empty");
    } else {
        CompileTarget t;
        t.name = "default";
        t.arch = presets::referenceZoned();
        t.opts = ZacOptions::full();
        t.opts.sa_threads = 1; // see targetFromJson
        m.targets.push_back(std::move(t));
    }

    if (!v.contains("jobs"))
        fatal("manifest: missing 'jobs' array");
    for (const json::Value &jv : v.at("jobs").asArray()) {
        ManifestJob job;
        const std::string ref = jv.at("circuit").asString();
        job.circuit = resolveCircuit(ref);
        job.label = jv.contains("label") ? jv.at("label").asString()
                                         : job.circuit.name();
        if (job.label.empty())
            job.label = ref;
        warnUnknownKeys(jv,
                        {"circuit", "label", "target", "repeat",
                         "seed", "timeout_seconds"},
                        "job '" + job.label + "'");

        if (jv.contains("target")) {
            const json::Value &tv = jv.at("target");
            if (tv.isString()) {
                const std::string &name = tv.asString();
                int found = -1;
                for (std::size_t i = 0; i < m.targets.size(); ++i)
                    if (m.targets[i].name == name)
                        found = static_cast<int>(i);
                if (found < 0)
                    fatal("manifest: job references unknown target '" +
                          name + "'");
                job.target = found;
            } else {
                job.target = static_cast<int>(tv.asInt());
                if (job.target < 0 ||
                    job.target >=
                        static_cast<int>(m.targets.size()))
                    fatal("manifest: job target index out of range");
            }
        }
        job.repeat = static_cast<int>(jv.numberOr("repeat", 1.0));
        if (job.repeat < 1)
            fatal("manifest: job 'repeat' must be >= 1");
        if (jv.contains("seed"))
            job.seed =
                static_cast<std::uint64_t>(jv.at("seed").asInt());
        job.timeout_seconds = jv.numberOr("timeout_seconds", 0.0);
        if (!std::isfinite(job.timeout_seconds) ||
            job.timeout_seconds < 0.0)
            fatal("manifest: job '" + job.label +
                  "': timeout_seconds must be a finite value >= 0 " +
                  "(0 disables the timeout)");
        m.jobs.push_back(std::move(job));
    }
    if (m.jobs.empty())
        fatal("manifest: 'jobs' must not be empty");
    return m;
}

Manifest
loadManifest(const std::string &path)
{
    return manifestFromJson(json::parseFile(path));
}

} // namespace zac::service
