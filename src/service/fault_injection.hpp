/**
 * @file
 * Deterministic fault injection for the compile service.
 *
 * A FaultPlan decides, as a pure function of (plan seed, job id,
 * attempt), whether a worker should suffer an injected fault while
 * running that job: a transient throw before the compile starts, a
 * cooperative cancellation at a chosen pipeline phase boundary (driven
 * through CompileControl::on_phase), or a slow-worker stall. The same
 * plan therefore replays the same faults no matter how jobs land on
 * workers, which is what lets the chaos soak and the unit tests assert
 * exact outcomes (every job one terminal record, retries counted,
 * served bytes bit-identical) instead of probabilistic ones.
 *
 * Plans come from three places:
 *  - tests construct them directly;
 *  - `perf_service --chaos` builds one per soak round;
 *  - the `ZAC_SERVICE_FAULT_*` environment hook (fromEnv()) arms the
 *    worker loop of ANY service-backed binary — e.g. zac_batch under a
 *    soak script — without a code change.
 *
 * Snapshot corruption (the fourth fault class) is a file mutation, not
 * a worker event; corruptSnapshotFile() applies one of the corruption
 * modes the cache-store loader must survive.
 */

#ifndef ZAC_SERVICE_FAULT_INJECTION_HPP
#define ZAC_SERVICE_FAULT_INJECTION_HPP

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace zac::service
{

/**
 * An injected, retryable worker failure. The service classifies this
 * exception (and only this exception) as transient: the job is
 * re-enqueued with backoff instead of failing terminally, up to the
 * configured retry budget.
 */
class TransientError : public std::runtime_error
{
  public:
    explicit TransientError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** Deterministic seeded fault plan for the service worker loop. */
struct FaultPlan
{
    /** Base seed; every decision mixes it with (job id, attempt). */
    std::uint64_t seed = 0;
    /** Probability of a TransientError before the compile starts. */
    double throw_rate = 0.0;
    /** Probability of a cooperative cancel at a phase boundary. */
    double cancel_rate = 0.0;
    /** Probability of a slow-worker stall before the compile. */
    double stall_rate = 0.0;
    /** Stall duration when a stall fires. */
    double stall_ms = 2.0;

    /** @return whether any fault class can fire at all. */
    bool
    enabled() const
    {
        return throw_rate > 0.0 || cancel_rate > 0.0 ||
               stall_rate > 0.0;
    }

    /** Transient throw for (job, attempt)? */
    bool shouldThrow(std::uint64_t job_id, int attempt) const;
    /** Cooperative mid-compile cancel for (job, attempt)? */
    bool shouldCancel(std::uint64_t job_id, int attempt) const;
    /**
     * Pipeline phase boundary (0-based index into the compile's
     * checkpoint sequence) at which the cancel fires; only meaningful
     * when shouldCancel() is true.
     */
    int cancelPhase(std::uint64_t job_id, int attempt) const;
    /** Slow-worker stall for (job, attempt)? */
    bool shouldStall(std::uint64_t job_id, int attempt) const;

    /**
     * Build a plan from the ZAC_SERVICE_FAULT_* environment hook:
     * ZAC_SERVICE_FAULT_SEED, _THROW_RATE, _CANCEL_RATE, _STALL_RATE,
     * _STALL_MS. @return nullopt when none of the variables is set.
     */
    static std::optional<FaultPlan> fromEnv();
};

/** Ways corruptSnapshotFile() can damage a cache snapshot on disk. */
enum class SnapshotCorruption
{
    Truncate,     ///< cut the file mid-record (simulated crash mid-write)
    FlipByte,     ///< flip one payload byte (checksum must catch it)
    WrongVersion, ///< rewrite the header with an unknown version
    Empty,        ///< replace the file with zero bytes
};

/**
 * Corrupt the snapshot at @p path in place. @p seed picks the damaged
 * offset deterministically where the mode needs one.
 * @throws FatalError when the file cannot be read or written.
 */
void corruptSnapshotFile(const std::string &path, SnapshotCorruption mode,
                         std::uint64_t seed = 0);

} // namespace zac::service

#endif // ZAC_SERVICE_FAULT_INJECTION_HPP
