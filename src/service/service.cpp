#include "service/service.hpp"

#include <algorithm>

#include "arch/serialize.hpp"
#include "common/logging.hpp"

namespace zac::service
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0,
             std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

const char *
jobStatusName(JobStatus s)
{
    switch (s) {
      case JobStatus::Done: return "done";
      case JobStatus::Cancelled: return "cancelled";
      case JobStatus::TimedOut: return "timed_out";
      case JobStatus::Failed: return "failed";
    }
    return "?";
}

CompileService::CompileService(std::vector<CompileTarget> targets,
                               Config config, ResultSink sink)
    : config_(config), sink_(std::move(sink)),
      queue_(config.queue_capacity),
      cache_(config.cache_capacity, config.cache_shards)
{
    if (targets.empty())
        fatal("CompileService: at least one compile target required");
    targets_.reserve(targets.size());
    for (CompileTarget &t : targets) {
        TargetState st;
        st.arch_fingerprint = architectureFingerprint(t.arch);
        st.options_digest = t.opts.digest();
        st.compiler =
            std::make_shared<const ZacCompiler>(t.arch, t.opts);
        st.target = std::move(t);
        targets_.push_back(std::move(st));
    }

    num_workers_ = config_.num_workers > 0
                       ? config_.num_workers
                       : static_cast<int>(std::max(
                             1u, std::thread::hardware_concurrency()));
    workers_.reserve(static_cast<std::size_t>(num_workers_));
    for (int i = 0; i < num_workers_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

CompileService::~CompileService()
{
    shutdown();
}

const CompileTarget &
CompileService::target(int index) const
{
    if (index < 0 || index >= numTargets())
        fatal("CompileService::target: index out of range");
    return targets_[static_cast<std::size_t>(index)].target;
}

std::uint64_t
CompileService::submit(Submission s)
{
    if (s.target < 0 ||
        s.target >= static_cast<int>(targets_.size()))
        fatal("CompileService::submit: invalid target index " +
              std::to_string(s.target));

    Job job;
    job.name = s.name.empty() ? s.circuit.name() : std::move(s.name);
    job.circuit = std::move(s.circuit);
    job.target = s.target;
    job.seed = s.seed;
    job.timeout_seconds = s.timeout_seconds;
    job.cancel_flag = std::make_shared<std::atomic<bool>>(false);

    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (shutdown_)
            fatal("CompileService::submit: service is shut down");
        job.id = next_job_id_++;
        ++submitted_;
        live_jobs_.emplace(job.id, job.cancel_flag);
    }
    const std::uint64_t id = job.id;
    job.submit_time = std::chrono::steady_clock::now();
    if (!queue_.push(std::move(job))) {
        // Closed between the check and the push: roll the books back.
        std::lock_guard<std::mutex> lock(state_mutex_);
        --submitted_;
        live_jobs_.erase(id);
        fatal("CompileService::submit: service is shut down");
    }
    return id;
}

bool
CompileService::cancel(std::uint64_t job_id)
{
    std::lock_guard<std::mutex> lock(state_mutex_);
    auto it = live_jobs_.find(job_id);
    if (it == live_jobs_.end())
        return false;
    it->second->store(true, std::memory_order_relaxed);
    return true;
}

void
CompileService::drain()
{
    std::unique_lock<std::mutex> lock(state_mutex_);
    all_done_.wait(lock, [&] { return delivered_ == submitted_; });
}

void
CompileService::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (shutdown_)
            return;
        shutdown_ = true;
    }
    drain();
    queue_.close();
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
}

ResultCache::Stats
CompileService::cacheStats() const
{
    return cache_.stats();
}

void
CompileService::workerLoop()
{
    while (std::optional<Job> job = queue_.pop())
        runJob(*job);
}

void
CompileService::runJob(Job &job)
{
    using clock = std::chrono::steady_clock;
    const clock::time_point picked_up = clock::now();

    const TargetState &ts = targets_[static_cast<std::size_t>(
        job.target)];

    JobRecord record;
    record.job_id = job.id;
    record.name = job.name;
    record.target = job.target;
    record.circuit_hash = job.circuit.contentHash();
    record.queue_seconds = secondsSince(job.submit_time, picked_up);

    // Per-job deterministic seed: the effective options are fixed at
    // submit time and independent of worker scheduling.
    ZacOptions opts = ts.target.opts;
    if (job.seed)
        opts.seed = *job.seed;
    const CacheKey key{record.circuit_hash, ts.arch_fingerprint,
                       opts.digest()};

    if (job.cancel_flag->load(std::memory_order_relaxed)) {
        record.status = JobStatus::Cancelled;
        deliver(record, job.submit_time);
        return;
    }

    if (cache_.enabled()) {
        if (std::shared_ptr<const ZacResult> hit = cache_.find(key)) {
            record.status = JobStatus::Done;
            record.cache_hit = true;
            // The key is name-blind (Circuit::contentHash ignores
            // names), but the result embeds the compiled circuit's
            // name in staged.name / program.circuit_name. Those are
            // pure metadata — nothing else in the result derives from
            // them — so when a content-equal circuit arrives under a
            // different name, rebind the name fields to reproduce a
            // fresh compile of *this* submission bit for bit.
            if (hit->program.circuit_name != job.circuit.name()) {
                auto rebound = std::make_shared<ZacResult>(*hit);
                rebound->staged.name = job.circuit.name();
                rebound->program.circuit_name = job.circuit.name();
                record.result = std::move(rebound);
            } else {
                record.result = std::move(hit);
            }
            deliver(record, job.submit_time);
            return;
        }
    }

    CompileControl control;
    control.cancel = job.cancel_flag.get();
    if (job.timeout_seconds > 0.0)
        control.deadline =
            job.submit_time +
            std::chrono::duration_cast<clock::duration>(
                std::chrono::duration<double>(job.timeout_seconds));

    try {
        ZacResult result;
        if (job.seed) {
            // Seed override: a per-job compiler bound to the derived
            // options (copies the architecture; rare path by design).
            const ZacCompiler compiler(ts.target.arch, opts);
            result = compiler.compile(job.circuit, control);
        } else {
            result = ts.compiler->compile(job.circuit, control);
        }
        auto shared =
            std::make_shared<const ZacResult>(std::move(result));
        record.result = cache_.enabled()
                            ? cache_.insert(key, std::move(shared))
                            : std::move(shared);
        record.status = JobStatus::Done;
    } catch (const CompileCancelled &c) {
        record.status = c.timedOut() ? JobStatus::TimedOut
                                     : JobStatus::Cancelled;
    } catch (const std::exception &e) {
        // FatalError (bad input for the target), PanicError (library
        // bug), bad_alloc, ... — a batch engine must outlive any one
        // job, and drain() depends on every job being delivered.
        record.status = JobStatus::Failed;
        record.error = e.what();
    }
    deliver(record, job.submit_time);
}

void
CompileService::deliver(JobRecord &record,
                        std::chrono::steady_clock::time_point
                            submit_time)
{
    record.service_seconds =
        secondsSince(submit_time, std::chrono::steady_clock::now());
    if (sink_) {
        std::lock_guard<std::mutex> lock(sink_mutex_);
        try {
            sink_(record);
        } catch (const std::exception &e) {
            // A throwing sink must not kill the worker (std::terminate)
            // or skip the bookkeeping below, which drain() depends on.
            warn(std::string("CompileService: result sink threw: ") +
                 e.what());
        }
    }
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        live_jobs_.erase(record.job_id);
        ++delivered_;
    }
    all_done_.notify_all();
}

} // namespace zac::service
