#include "service/service.hpp"

#include <algorithm>
#include <cmath>

#include "common/json.hpp"
#include "common/logging.hpp"

namespace zac::service
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0,
             std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

const char *
jobStatusName(JobStatus s)
{
    switch (s) {
      case JobStatus::Done: return "done";
      case JobStatus::Cancelled: return "cancelled";
      case JobStatus::TimedOut: return "timed_out";
      case JobStatus::Failed: return "failed";
      case JobStatus::Overloaded: return "overloaded";
    }
    return "?";
}

std::optional<JobStatus>
jobStatusFromName(std::string_view name)
{
    if (name == "done")
        return JobStatus::Done;
    if (name == "cancelled")
        return JobStatus::Cancelled;
    if (name == "timed_out")
        return JobStatus::TimedOut;
    if (name == "failed")
        return JobStatus::Failed;
    if (name == "overloaded")
        return JobStatus::Overloaded;
    return std::nullopt;
}

CompileService::CompileService(std::vector<CompileTarget> targets,
                               Config config, ResultSink sink)
    : config_(config), sink_(std::move(sink)),
      queue_(config.queue_capacity),
      cache_(config.cache_capacity, config.cache_shards)
{
    if (targets.empty())
        fatal("CompileService: at least one compile target required");
    targets_.reserve(targets.size());
    for (CompileTarget &t : targets) {
        TargetState st;
        // Warm contexts come from the process-wide pool, so repeated
        // constructions against one architecture (restarts, the churn
        // bench) share a single build; the cold path keeps the legacy
        // per-service derivation for an honest baseline.
        st.context = config_.warm_contexts
                         ? WarmContextPool::global().acquire(t.arch)
                         : ArchContext::build(t.arch);
        st.arch_fingerprint = st.context->fingerprint;
        st.options_digest = t.opts.digest();
        st.compiler =
            std::make_shared<const ZacCompiler>(st.context, t.opts);
        st.target = std::move(t);
        targets_.push_back(std::move(st));
    }

    faults_ = config_.faults ? config_.faults : FaultPlan::fromEnv();

    // Warm start: reload the persisted cache before any worker can
    // race a compile against it. The loader is tolerant — a damaged
    // snapshot costs hits, never construction.
    if (!config_.snapshot_path.empty() && cache_.enabled()) {
        snapshot_load_ =
            loadCacheSnapshot(config_.snapshot_path, cache_);
        stats_.snapshot_records_loaded = snapshot_load_.records_loaded;
        stats_.snapshot_records_skipped = snapshot_load_.skippedTotal();
        if (snapshot_load_.skippedTotal() > 0)
            warn("CompileService: cache snapshot " +
                 config_.snapshot_path + ": loaded " +
                 std::to_string(snapshot_load_.records_loaded) +
                 " records, skipped " +
                 std::to_string(snapshot_load_.skippedTotal()) +
                 " damaged");
    }

    num_workers_ = config_.num_workers > 0
                       ? config_.num_workers
                       : static_cast<int>(std::max(
                             1u, std::thread::hardware_concurrency()));
    workers_.reserve(static_cast<std::size_t>(num_workers_));
    for (int i = 0; i < num_workers_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

CompileService::~CompileService()
{
    shutdown();
}

const CompileTarget &
CompileService::target(int index) const
{
    if (index < 0 || index >= numTargets())
        fatal("CompileService::target: index out of range");
    return targets_[static_cast<std::size_t>(index)].target;
}

std::uint64_t
CompileService::submit(Submission s)
{
    if (s.target < 0 ||
        s.target >= static_cast<int>(targets_.size()))
        fatal("CompileService::submit: invalid target index " +
              std::to_string(s.target));

    Job job;
    job.name = s.name.empty() ? s.circuit.name() : std::move(s.name);
    job.circuit = std::move(s.circuit);
    job.target = s.target;
    job.seed = s.seed;
    job.timeout_seconds = s.timeout_seconds;
    job.cancel_flag = std::make_shared<std::atomic<bool>>(false);

    bool reject = false;
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (shutdown_)
            fatal("CompileService::submit: service is shut down");
        job.id = next_job_id_++;
        const std::uint64_t pending =
            stats_.submitted - stats_.delivered;
        reject = draining_ ||
                 (config_.admission_high_water > 0 &&
                  pending >= config_.admission_high_water);
        ++stats_.submitted;
        if (reject)
            ++stats_.overloaded;
        else
            live_jobs_.emplace(job.id, job.cancel_flag);
    }
    const std::uint64_t id = job.id;
    job.submit_time = std::chrono::steady_clock::now();

    if (reject) {
        // Graceful degradation: shed load with an immediate terminal
        // record from the submitting thread — the delivery invariant
        // (one record per submit) holds even for rejected work.
        JobRecord record;
        record.job_id = id;
        record.name = job.name;
        record.target = job.target;
        record.status = JobStatus::Overloaded;
        record.circuit_hash = job.circuit.contentHash();
        record.error = "rejected at admission: service overloaded";
        deliver(record, job.submit_time);
        return id;
    }

    if (!queue_.push(std::move(job))) {
        // Closed between the check and the push: roll the books back.
        std::lock_guard<std::mutex> lock(state_mutex_);
        --stats_.submitted;
        live_jobs_.erase(id);
        fatal("CompileService::submit: service is shut down");
    }
    return id;
}

bool
CompileService::cancel(std::uint64_t job_id)
{
    std::lock_guard<std::mutex> lock(state_mutex_);
    auto it = live_jobs_.find(job_id);
    if (it == live_jobs_.end())
        return false;
    it->second->store(true, std::memory_order_relaxed);
    return true;
}

void
CompileService::drain()
{
    std::unique_lock<std::mutex> lock(state_mutex_);
    all_done_.wait(
        lock, [&] { return stats_.delivered == stats_.submitted; });
}

bool
CompileService::drainAndStop(double deadline_seconds)
{
    // Serialize concurrent stop requests: the second caller blocks
    // here until the first finished joining, then sees shutdown_.
    std::lock_guard<std::mutex> stop_lock(stop_mutex_);
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (shutdown_)
            return true;
        draining_ = true; // submissions from here on are rejected
    }

    bool clean = true;
    {
        std::unique_lock<std::mutex> lock(state_mutex_);
        const auto done = [&] {
            return stats_.delivered == stats_.submitted;
        };
        if (deadline_seconds > 0.0) {
            if (!all_done_.wait_for(
                    lock,
                    std::chrono::duration<double>(deadline_seconds),
                    done)) {
                // Deadline expired: cancel every live job. Compiles
                // stop at their next phase boundary, queued jobs drop
                // at pickup, so this wait is bounded.
                clean = false;
                for (auto &[id, flag] : live_jobs_)
                    flag->store(true, std::memory_order_relaxed);
                all_done_.wait(lock, done);
            }
        } else {
            all_done_.wait(lock, done);
        }
    }

    flushSnapshot();
    queue_.close();
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        shutdown_ = true;
    }
    return clean;
}

void
CompileService::shutdown()
{
    drainAndStop(0.0);
}

ResultCache::Stats
CompileService::cacheStats() const
{
    return cache_.stats();
}

CompileService::Stats
CompileService::stats() const
{
    std::lock_guard<std::mutex> lock(state_mutex_);
    return stats_;
}

CompileService::ServiceStats
CompileService::serviceStats() const
{
    ServiceStats s;
    s.cache = cache_.stats();
    s.queue_depth = queue_.size();
    s.workers = num_workers_;
    s.uptime_seconds =
        secondsSince(start_time_, std::chrono::steady_clock::now());
    s.warm = WarmContextPool::global().stats();
    std::lock_guard<std::mutex> lock(state_mutex_);
    s.counters = stats_;
    s.pending = stats_.submitted - stats_.delivered;
    s.draining = draining_;
    return s;
}

void
CompileService::flushSnapshot()
{
    if (config_.snapshot_path.empty() || !cache_.enabled())
        return;
    try {
        const std::size_t n =
            saveCacheSnapshot(config_.snapshot_path, cache_);
        std::lock_guard<std::mutex> lock(state_mutex_);
        stats_.snapshot_records_written = n;
    } catch (const std::exception &e) {
        // A failed flush loses warm-start hits, not results: every
        // record was already delivered through the sink.
        warn(std::string(
                 "CompileService: cache snapshot flush failed: ") +
             e.what());
    }
}

void
CompileService::workerLoop()
{
    // One reusable compile-scratch per worker: buffer capacity
    // persists across the jobs this thread runs, contents are
    // value-reset per compile.
    CompileScratch scratch;
    while (std::optional<Job> job = queue_.pop())
        runJob(*job, scratch);
}

std::shared_ptr<const ZacStreamedResult>
CompileService::reboundResult(
    std::shared_ptr<const ZacStreamedResult> hit,
    const std::string &circuit_name)
{
    // The cache key is name-blind (Circuit::contentHash ignores
    // names), but the result embeds the compiled circuit's name both
    // as metadata and as one string literal inside the serialized
    // bytes (at the recorded name span). Nothing else derives from
    // the name, so when a content-equal circuit arrives under a
    // different name, splicing the new literal over the old one
    // reproduces a fresh compile of *this* submission bit for bit.
    if (hit->circuit_name == circuit_name)
        return hit;
    auto rebound = std::make_shared<ZacStreamedResult>(*hit);
    const std::string literal = json::Value(circuit_name).dump();
    rebound->program_json.replace(rebound->name_off,
                                  rebound->name_len, literal);
    rebound->name_len = literal.size();
    rebound->circuit_name = circuit_name;
    return rebound;
}

void
CompileService::runJob(Job &job, CompileScratch &scratch)
{
    using clock = std::chrono::steady_clock;
    const clock::time_point picked_up = clock::now();
    const clock::time_point submit_time = job.submit_time;

    const TargetState &ts = targets_[static_cast<std::size_t>(
        job.target)];

    JobRecord record;
    record.job_id = job.id;
    record.name = job.name;
    record.target = job.target;
    record.circuit_hash = job.circuit.contentHash();
    record.queue_seconds = secondsSince(submit_time, picked_up);

    // Per-job deterministic seed: the effective options are fixed at
    // submit time and independent of worker scheduling.
    ZacOptions opts = ts.target.opts;
    if (job.seed)
        opts.seed = *job.seed;
    const CacheKey key{record.circuit_hash, ts.arch_fingerprint,
                       opts.digest()};

    if (job.cancel_flag->load(std::memory_order_relaxed)) {
        record.status = JobStatus::Cancelled;
        finishJob(record, key, submit_time);
        return;
    }

    if (cache_.enabled()) {
        if (std::shared_ptr<const ZacStreamedResult> hit =
                cache_.find(key)) {
            record.status = JobStatus::Done;
            record.cache_hit = true;
            record.result =
                reboundResult(std::move(hit), job.circuit.name());
            finishJob(record, key, submit_time);
            return;
        }
    }

    // In-flight dedup: identical keys racing before the first cache
    // insert coalesce onto one compile (the leader); everyone else
    // parks as a waiter and is settled from the leader's terminal
    // record. Only meaningful with the cache on — with the cache off
    // every job is an intentional recompile (the perf harness measures
    // raw throughput that way).
    if (cache_.enabled() && config_.dedup_in_flight) {
        bool is_waiter = false;
        {
            std::lock_guard<std::mutex> lock(inflight_mutex_);
            auto it = inflight_.find(key);
            if (it == inflight_.end()) {
                inflight_.emplace(key, InflightEntry{job.id, {}});
            } else if (it->second.leader_id != job.id) {
                it->second.waiters.push_back(std::move(job));
                is_waiter = true;
            }
            // leader_id == job.id: a retried leader coming back
            // around — it stays the leader and compiles again.
        }
        if (is_waiter)
            return; // the leader's terminal record settles this job
        // Close the race with a previous leader that published and
        // resolved between our cache miss and our registration.
        if (std::shared_ptr<const ZacStreamedResult> hit =
                cache_.find(key)) {
            record.status = JobStatus::Done;
            record.cache_hit = true;
            record.result =
                reboundResult(std::move(hit), job.circuit.name());
            finishJob(record, key, submit_time);
            return;
        }
    }

    record.attempts = job.attempt;

    // Injected slow-worker stall; placed after leader registration so
    // a stalled leader actually accumulates waiters to coalesce.
    if (faults_ && faults_->shouldStall(job.id, job.attempt))
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(
                faults_->stall_ms));

    CompileControl control;
    control.cancel = job.cancel_flag.get();
    if (job.timeout_seconds > 0.0)
        control.deadline =
            submit_time +
            std::chrono::duration_cast<clock::duration>(
                std::chrono::duration<double>(job.timeout_seconds));

    // Injected mid-compile cancel: flip the job's own cancel flag at a
    // deterministic phase boundary — exactly the code path a real
    // cancel() during a compile takes.
    int inject_cancel_phase = -1;
    int phase_index = 0;
    if (faults_ && faults_->shouldCancel(job.id, job.attempt))
        inject_cancel_phase =
            faults_->cancelPhase(job.id, job.attempt);
    if (inject_cancel_phase >= 0)
        control.on_phase = [&](const char *) {
            if (phase_index++ == inject_cancel_phase)
                job.cancel_flag->store(true,
                                       std::memory_order_relaxed);
        };

    try {
        if (faults_ && faults_->shouldThrow(job.id, job.attempt))
            throw TransientError(
                "injected transient fault (job " +
                std::to_string(job.id) + ", attempt " +
                std::to_string(job.attempt) + ")");
        // Zero-DOM default: stream the scheduler's output straight
        // into the serialized bytes with the worker's reusable
        // scratch. The cold configuration keeps the legacy pipeline
        // (DOM compile, then serialize) as a faithful baseline —
        // either way the bytes delivered are identical.
        const auto runCompile =
            [&](const ZacCompiler &compiler) -> ZacStreamedResult {
            if (config_.streamed)
                return compiler.compileStreamed(
                    job.circuit, control, &scratch,
                    config_.verify_streamed);
            return streamedResultFromDom(
                compiler.compile(job.circuit, control));
        };
        ZacStreamedResult result;
        if (job.seed && config_.warm_contexts) {
            // Seed override, warm: rebind the shared context to the
            // derived options — no architecture copy, no rebuild.
            const ZacCompiler compiler(ts.context, opts);
            result = runCompile(compiler);
        } else if (job.seed) {
            // Seed override, cold: a per-job compiler bound to the
            // derived options (copies the architecture and re-derives
            // its tables; the legacy cost structure).
            const ZacCompiler compiler(ts.target.arch, opts);
            result = runCompile(compiler);
        } else {
            result = runCompile(*ts.compiler);
        }
        auto shared = std::make_shared<const ZacStreamedResult>(
            std::move(result));
        record.result = cache_.enabled()
                            ? cache_.insert(key, std::move(shared))
                            : std::move(shared);
        record.status = JobStatus::Done;
    } catch (const CompileCancelled &c) {
        record.status = c.timedOut() ? JobStatus::TimedOut
                                     : JobStatus::Cancelled;
    } catch (const TransientError &e) {
        {
            std::lock_guard<std::mutex> lock(state_mutex_);
            ++stats_.transient_failures;
        }
        if (job.attempt <= config_.max_retries) {
            // Bounded exponential backoff, deterministic (no jitter —
            // reproducibility beats decorrelation inside one pool).
            const double backoff_ms = std::min(
                config_.retry_backoff_max_ms,
                config_.retry_backoff_ms *
                    std::ldexp(1.0, job.attempt - 1));
            {
                std::lock_guard<std::mutex> lock(state_mutex_);
                ++stats_.retries;
            }
            if (backoff_ms > 0.0)
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        backoff_ms));
            Job retry = std::move(job);
            ++retry.attempt;
            // forcePush: the retry was admitted once already, and a
            // worker must never block pushing into its own full queue
            // (all workers doing so would deadlock the pool).
            if (queue_.forcePush(retry))
                return; // not terminal yet; still the inflight leader
            record.status = JobStatus::Failed;
            record.error =
                std::string("service shut down during retry: ") +
                e.what();
        } else {
            {
                std::lock_guard<std::mutex> lock(state_mutex_);
                ++stats_.retries_exhausted;
            }
            record.status = JobStatus::Failed;
            record.error = "transient failure persisted after " +
                           std::to_string(job.attempt) +
                           " attempts: " + e.what();
        }
    } catch (const std::exception &e) {
        // FatalError (bad input for the target), PanicError (library
        // bug), bad_alloc, ... — permanent: a retry would fail the
        // same way, and a batch engine must outlive any one job.
        record.status = JobStatus::Failed;
        record.error = e.what();
    }
    finishJob(record, key, submit_time);
}

void
CompileService::finishJob(JobRecord &record, const CacheKey &key,
                          std::chrono::steady_clock::time_point
                              submit_time)
{
    deliver(record, submit_time);

    // If this job was the registered in-flight leader for its key,
    // resolve the entry and settle everyone who coalesced behind it.
    // Waiters that arrive after the erase find the result in the cache
    // (the insert happened before delivery) or become a new leader.
    std::vector<Job> waiters;
    {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        auto it = inflight_.find(key);
        if (it != inflight_.end() &&
            it->second.leader_id == record.job_id) {
            waiters = std::move(it->second.waiters);
            inflight_.erase(it);
        }
    }
    for (Job &w : waiters)
        settleWaiter(w, record);
}

void
CompileService::settleWaiter(Job &waiter, const JobRecord &leader)
{
    using clock = std::chrono::steady_clock;
    JobRecord record;
    record.job_id = waiter.id;
    record.name = waiter.name;
    record.target = waiter.target;
    record.circuit_hash = leader.circuit_hash;
    record.queue_seconds =
        secondsSince(waiter.submit_time, clock::now());

    if (waiter.cancel_flag->load(std::memory_order_relaxed)) {
        record.status = JobStatus::Cancelled;
        deliver(record, waiter.submit_time);
        return;
    }

    if (leader.status == JobStatus::Done) {
        if (waiter.timeout_seconds > 0.0 &&
            clock::now() >=
                waiter.submit_time +
                    std::chrono::duration_cast<clock::duration>(
                        std::chrono::duration<double>(
                            waiter.timeout_seconds))) {
            record.status = JobStatus::TimedOut;
            deliver(record, waiter.submit_time);
            return;
        }
        record.status = JobStatus::Done;
        record.cache_hit = true;
        record.result =
            reboundResult(leader.result, waiter.circuit.name());
        {
            std::lock_guard<std::mutex> lock(state_mutex_);
            ++stats_.coalesced_served;
        }
        deliver(record, waiter.submit_time);
        return;
    }

    // The leader produced no result (cancelled / timed out / failed).
    // Its outcome must not leak onto an unrelated submission — the
    // waiter gets its own run.
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++stats_.coalesced_requeued;
    }
    if (!queue_.forcePush(waiter)) {
        record.status = JobStatus::Failed;
        record.error =
            "service shut down while re-queueing coalesced job";
        deliver(record, waiter.submit_time);
    }
}

void
CompileService::deliver(JobRecord &record,
                        std::chrono::steady_clock::time_point
                            submit_time)
{
    record.service_seconds =
        secondsSince(submit_time, std::chrono::steady_clock::now());
    if (sink_) {
        std::lock_guard<std::mutex> lock(sink_mutex_);
        try {
            sink_(record);
        } catch (const std::exception &e) {
            // A throwing sink must not kill the worker (std::terminate)
            // or skip the bookkeeping below, which drain() depends on.
            warn(std::string("CompileService: result sink threw: ") +
                 e.what());
        }
    }
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        live_jobs_.erase(record.job_id);
        ++stats_.delivered;
    }
    all_done_.notify_all();
}

} // namespace zac::service
