#include "service/warm_context_pool.hpp"

#include "arch/serialize.hpp"

namespace zac::service
{

WarmContextPool::WarmContextPool(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1)
{
}

std::shared_ptr<const ArchContext>
WarmContextPool::acquire(const Architecture &arch)
{
    const std::uint64_t fp = architectureFingerprint(arch);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(fp);
    if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        ++stats_.hits;
        return it->second->second;
    }

    // Build under the lock: concurrent first sights of one architecture
    // coalesce onto a single build instead of racing duplicates.
    std::shared_ptr<const ArchContext> ctx = ArchContext::build(arch);
    ++stats_.misses;
    stats_.build_seconds += ctx->build_seconds;
    lru_.emplace_front(fp, ctx);
    map_.emplace(fp, lru_.begin());
    while (lru_.size() > capacity_) {
        map_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
    }
    return ctx;
}

void
WarmContextPool::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    map_.clear();
}

WarmContextPool::Stats
WarmContextPool::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s = stats_;
    s.entries = lru_.size();
    return s;
}

WarmContextPool &
WarmContextPool::global()
{
    static WarmContextPool pool;
    return pool;
}

} // namespace zac::service
