/**
 * @file
 * Batch manifest: the declarative input of the zac_batch frontend.
 *
 * A manifest is one JSON document naming compile targets (architecture
 * preset or spec file + option preset) and jobs (QASM paths or built-in
 * paper benchmarks) against those targets:
 *
 * {
 *   "targets": [
 *     {"name": "ref-full", "arch": "reference", "aods": 1,
 *      "preset": "full", "seed": 1, "sa_iterations": 1000}
 *   ],
 *   "jobs": [
 *     {"circuit": "ghz_n40"},
 *     {"circuit": "path/to/circuit.qasm", "target": "ref-full",
 *      "repeat": 2, "timeout_seconds": 10, "seed": 7}
 *   ]
 * }
 *
 * "targets" may be omitted (one default reference/full target), and a
 * job's "target" defaults to the first target. "arch" accepts the
 * presets reference / monolithic / arch1 / arch2 or a spec-JSON path;
 * "preset" accepts full / vanilla / dynplace / dynplace_reuse.
 */

#ifndef ZAC_SERVICE_MANIFEST_HPP
#define ZAC_SERVICE_MANIFEST_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/json.hpp"
#include "service/service.hpp"

namespace zac::service
{

/** One manifest job entry, resolved against the manifest's targets. */
struct ManifestJob
{
    std::string label;    ///< job label (defaults to the circuit name)
    Circuit circuit;      ///< loaded/generated circuit
    int target = 0;       ///< index into Manifest::targets
    int repeat = 1;       ///< submit this many copies
    std::optional<std::uint64_t> seed;
    double timeout_seconds = 0.0;
};

/** A fully resolved batch manifest. */
struct Manifest
{
    std::vector<CompileTarget> targets;
    std::vector<ManifestJob> jobs;
};

/**
 * Resolve a circuit reference: a path ending in ".qasm" is parsed as
 * OpenQASM 2.0; anything else must name a built-in paper benchmark.
 * @throws FatalError on unknown names or parse errors.
 */
Circuit resolveCircuit(const std::string &ref);

/** Build one compile target from its manifest JSON object. */
CompileTarget targetFromJson(const json::Value &v);

/** Parse and resolve a manifest document. @throws FatalError. */
Manifest manifestFromJson(const json::Value &v);

/** Load a manifest from a JSON file. @throws FatalError. */
Manifest loadManifest(const std::string &path);

} // namespace zac::service

#endif // ZAC_SERVICE_MANIFEST_HPP
