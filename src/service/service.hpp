/**
 * @file
 * The batch compile service: a work-queue engine that shards
 * zac::compile() calls across a worker pool.
 *
 * This is the server mode called for by the heavy-traffic north star:
 * accept many circuits, compile them concurrently (compile() is const
 * and re-entrant since the per-thread-scratch rewrite), serve repeated
 * submissions from a content-addressed result cache, and stream results
 * out through a sink as workers finish — no global barrier, no
 * buffering of whole batches.
 *
 * Determinism: a compilation is a pure function of (circuit,
 * architecture, options incl. seed). Workers never share mutable state
 * with a compile in flight, so results are bit-identical regardless of
 * worker count, scheduling order, or whether they were served from the
 * cache. The perf harness and tests assert this.
 */

#ifndef ZAC_SERVICE_SERVICE_HPP
#define ZAC_SERVICE_SERVICE_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "circuit/circuit.hpp"
#include "core/compiler.hpp"
#include "core/options.hpp"
#include "service/job_queue.hpp"
#include "service/result_cache.hpp"

namespace zac::service
{

/**
 * One (architecture, options) pair jobs can target. The service
 * precomputes the architecture fingerprint and a shared ZacCompiler per
 * target at construction, so per-job work is just a hash of the circuit.
 */
struct CompileTarget
{
    std::string name;  ///< label echoed into protocol records
    Architecture arch; ///< finalized architecture
    ZacOptions opts;   ///< compile options (seed included)
};

/** Terminal state of one job. */
enum class JobStatus
{
    Done,      ///< compiled (or cache-served) successfully
    Cancelled, ///< cancel() hit the job before/while it ran
    TimedOut,  ///< the per-job deadline expired mid-compile
    Failed,    ///< compile threw (bad circuit for the target, etc.)
};

/** @return the lowercase protocol name for @p s (e.g. "done"). */
const char *jobStatusName(JobStatus s);

/** Everything the service reports about one finished job. */
struct JobRecord
{
    std::uint64_t job_id = 0;
    std::string name;          ///< submission label (circuit name)
    int target = 0;            ///< index into targets()
    JobStatus status = JobStatus::Failed;
    bool cache_hit = false;
    std::string error;         ///< failure message when Failed

    /** Compile output; non-null iff status == Done. Shared with the
     *  cache — treat as immutable. */
    std::shared_ptr<const ZacResult> result;

    std::uint64_t circuit_hash = 0; ///< circuit key component
    double queue_seconds = 0.0;     ///< submit -> worker pickup
    double service_seconds = 0.0;   ///< submit -> delivery
};

/**
 * The compile-service engine: bounded MPMC job queue, worker pool,
 * result cache, per-job cancellation and timeout.
 *
 * Results are delivered through the sink callback, invoked from worker
 * threads as each job finishes. The service serializes sink invocations
 * (one at a time, under an internal mutex), so the sink may write to a
 * shared stream without further locking; it must not call back into the
 * service except via cancel().
 */
class CompileService
{
  public:
    struct Config
    {
        /** Worker threads; 0 = hardware concurrency. */
        int num_workers = 0;
        /** Job-queue bound (backpressure on submit). */
        std::size_t queue_capacity = 256;
        /** Result-cache entries (0 disables caching). */
        std::size_t cache_capacity = 1024;
        /** Cache lock shards. */
        std::size_t cache_shards = 8;
    };

    using ResultSink = std::function<void(const JobRecord &)>;

    /** One job submission. */
    struct Submission
    {
        std::string name;    ///< label (defaults to circuit name)
        Circuit circuit;
        int target = 0;      ///< index into targets()
        /** Per-job deterministic seed override; when set, the target's
         *  options are re-digested with this seed (distinct cache
         *  entry, reproducible independent of submission order). */
        std::optional<std::uint64_t> seed;
        /** Per-job wall-clock timeout; <= 0 means none. */
        double timeout_seconds = 0.0;
    };

    CompileService(std::vector<CompileTarget> targets, Config config,
                   ResultSink sink);
    ~CompileService();

    CompileService(const CompileService &) = delete;
    CompileService &operator=(const CompileService &) = delete;

    int numTargets() const { return static_cast<int>(targets_.size()); }
    /** The target @p index jobs can reference in Submission::target. */
    const CompileTarget &target(int index) const;
    int numWorkers() const { return num_workers_; }

    /**
     * Enqueue one job; blocks while the queue is full.
     * @return the job id (also echoed in the JobRecord).
     * @throws FatalError on an invalid target index or after shutdown.
     */
    std::uint64_t submit(Submission s);

    /**
     * Request cancellation of a pending or running job. Queued jobs are
     * dropped at pickup; running jobs stop at the next compile phase
     * boundary. Either way the sink still receives a (Cancelled)
     * record.
     * @return false if the job already completed (or never existed).
     */
    bool cancel(std::uint64_t job_id);

    /** Block until every job submitted so far has been delivered. */
    void drain();

    /** Drain, stop the workers, and close the queue; idempotent. */
    void shutdown();

    ResultCache::Stats cacheStats() const;

  private:
    struct TargetState
    {
        CompileTarget target;
        std::shared_ptr<const ZacCompiler> compiler;
        std::uint64_t arch_fingerprint = 0;
        std::uint64_t options_digest = 0;
    };

    struct Job
    {
        std::uint64_t id = 0;
        std::string name;
        Circuit circuit;
        int target = 0;
        std::optional<std::uint64_t> seed;
        double timeout_seconds = 0.0;
        std::chrono::steady_clock::time_point submit_time;
        std::shared_ptr<std::atomic<bool>> cancel_flag;
    };

    void workerLoop();
    void runJob(Job &job);
    void deliver(JobRecord &record,
                 std::chrono::steady_clock::time_point submit_time);

    std::vector<TargetState> targets_;
    Config config_;
    ResultSink sink_;
    int num_workers_ = 1;

    BoundedMpmcQueue<Job> queue_;
    ResultCache cache_;
    std::vector<std::thread> workers_;

    std::mutex sink_mutex_;

    std::mutex state_mutex_;
    std::condition_variable all_done_;
    std::uint64_t next_job_id_ = 1;
    std::uint64_t submitted_ = 0;
    std::uint64_t delivered_ = 0;
    bool shutdown_ = false;
    /** Cancel flags of jobs not yet delivered, by job id. */
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<std::atomic<bool>>>
        live_jobs_;
};

} // namespace zac::service

#endif // ZAC_SERVICE_SERVICE_HPP
