/**
 * @file
 * The batch compile service: a fault-tolerant work-queue engine that
 * shards zac::compile() calls across a worker pool.
 *
 * This is the server mode called for by the heavy-traffic north star:
 * accept many circuits, compile them concurrently (compile() is const
 * and re-entrant since the per-thread-scratch rewrite), serve repeated
 * submissions from a content-addressed result cache, and stream results
 * out through a sink as workers finish — no global barrier, no
 * buffering of whole batches.
 *
 * Fault tolerance (ISSUE 6) layers four guarantees on top:
 *  - cache persistence: the result cache can spill to a JSONL snapshot
 *    (atomic write-temp-then-rename, checksummed records) and reload it
 *    on construction, so restarts start warm;
 *  - retry with bounded exponential backoff: transient worker failures
 *    (the injectable TransientError fault channel) re-enqueue the job
 *    up to `max_retries` times; permanent failures (bad circuit for the
 *    target) still fail fast;
 *  - graceful degradation: past an admission high-water mark new
 *    submissions are rejected with an `overloaded` terminal record
 *    instead of growing the backlog without bound, identical in-flight
 *    keys coalesce onto one compile (one compile, N records), and
 *    drainAndStop() stops admission, finishes in-flight work against a
 *    deadline, flushes the snapshot, and joins the workers;
 *  - deterministic fault injection: a seeded FaultPlan (or the
 *    ZAC_SERVICE_FAULT_* environment hook) drives throws, mid-compile
 *    cancellations, and stalls from tests and the chaos soak.
 *
 * Delivery invariant: every submit() leads to EXACTLY ONE terminal
 * JobRecord through the sink — compiled, cache-served, coalesced,
 * cancelled, timed out, failed (after retries), or rejected as
 * overloaded. drain() and the chaos harness are built on it.
 *
 * Determinism: a compilation is a pure function of (circuit,
 * architecture, options incl. seed). Workers never share mutable state
 * with a compile in flight, so results are bit-identical regardless of
 * worker count, scheduling order, or whether they were served from the
 * cache, a coalesced leader, or a reloaded snapshot. The perf harness
 * and tests assert this.
 */

#ifndef ZAC_SERVICE_SERVICE_HPP
#define ZAC_SERVICE_SERVICE_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "circuit/circuit.hpp"
#include "core/compiler.hpp"
#include "core/options.hpp"
#include "service/cache_store.hpp"
#include "service/fault_injection.hpp"
#include "service/job_queue.hpp"
#include "service/result_cache.hpp"
#include "service/warm_context_pool.hpp"

namespace zac::service
{

/**
 * One (architecture, options) pair jobs can target. The service
 * precomputes the architecture fingerprint and a shared ZacCompiler per
 * target at construction, so per-job work is just a hash of the circuit.
 */
struct CompileTarget
{
    std::string name;  ///< label echoed into protocol records
    Architecture arch; ///< finalized architecture
    ZacOptions opts;   ///< compile options (seed included)
};

/** Terminal state of one job. */
enum class JobStatus
{
    Done,       ///< compiled (or cache-served) successfully
    Cancelled,  ///< cancel() hit the job before/while it ran
    TimedOut,   ///< the per-job deadline expired mid-compile
    Failed,     ///< compile threw (bad circuit, retries exhausted, ...)
    Overloaded, ///< rejected at admission: backlog past the high-water
};

/** @return the lowercase protocol name for @p s (e.g. "done"). */
const char *jobStatusName(JobStatus s);

/** Inverse of jobStatusName(). @return nullopt for unknown names. */
std::optional<JobStatus> jobStatusFromName(std::string_view name);

/** Everything the service reports about one finished job. */
struct JobRecord
{
    std::uint64_t job_id = 0;
    std::string name;          ///< submission label (circuit name)
    int target = 0;            ///< index into targets()
    JobStatus status = JobStatus::Failed;
    bool cache_hit = false;
    /** Compile attempts consumed: 1 for a clean compile, 1+k after k
     *  transient retries, 0 when no compile ran (cache hit, coalesced
     *  serve, overloaded rejection, cancel before pickup). */
    int attempts = 0;
    std::string error;         ///< failure message when Failed

    /** Compile output; non-null iff status == Done. Shared with the
     *  cache — treat as immutable. The streamed shape carries the
     *  compact ZAIR/JSON bytes directly (no ZairProgram DOM). */
    std::shared_ptr<const ZacStreamedResult> result;

    std::uint64_t circuit_hash = 0; ///< circuit key component
    double queue_seconds = 0.0;     ///< submit -> worker pickup
    double service_seconds = 0.0;   ///< submit -> delivery
};

/**
 * The compile-service engine: bounded MPMC job queue, worker pool,
 * result cache (optionally persistent), per-job cancellation and
 * timeout, transient-failure retry, in-flight dedup, and admission
 * control.
 *
 * Results are delivered through the sink callback, invoked from worker
 * threads (or, for overloaded rejections, the submitting thread) as
 * each job finishes. The service serializes sink invocations (one at a
 * time, under an internal mutex), so the sink may write to a shared
 * stream without further locking; it must not call back into the
 * service except via cancel().
 */
class CompileService
{
  public:
    struct Config
    {
        /** Worker threads; 0 = hardware concurrency. */
        int num_workers = 0;
        /** Job-queue bound (backpressure on submit). */
        std::size_t queue_capacity = 256;
        /** Result-cache entries (0 disables caching). */
        std::size_t cache_capacity = 1024;
        /** Cache lock shards. */
        std::size_t cache_shards = 8;

        /** Transient-failure re-runs per job (0 disables retry). */
        int max_retries = 2;
        /** First retry backoff; doubles per attempt (deterministic,
         *  no jitter — reproducibility beats decorrelation here). */
        double retry_backoff_ms = 1.0;
        /** Backoff growth cap. */
        double retry_backoff_max_ms = 50.0;
        /**
         * Admission high-water mark on undelivered jobs; a submission
         * past it is rejected with an `overloaded` terminal record. 0
         * keeps the legacy behavior (submit blocks on the bounded
         * queue instead of rejecting).
         */
        std::size_t admission_high_water = 0;
        /**
         * Coalesce identical cache keys racing before the first cache
         * insert: one compile, every coalesced job served from it.
         * Effective only while the cache is enabled (with no cache
         * every job is an intentional recompile).
         */
        bool dedup_in_flight = true;
        /**
         * Cache snapshot path; loaded (tolerantly) on construction and
         * flushed by drainAndStop()/shutdown(). Empty disables
         * persistence.
         */
        std::string snapshot_path;
        /** Fault plan; when unset, ZAC_SERVICE_FAULT_* is consulted. */
        std::optional<FaultPlan> faults;

        /**
         * Zero-DOM compile path: workers stream the scheduler's output
         * straight into the compact ZAIR/JSON serialization instead of
         * materializing a ZairProgram. Off reproduces the legacy DOM
         * pipeline (compile, then serialize) — the perf harness uses
         * that as its cold baseline. Either way the delivered bytes are
         * identical; only the cost structure differs.
         */
        bool streamed = true;
        /**
         * Acquire per-architecture contexts (proximity tables, ...)
         * from the process-wide WarmContextPool instead of building
         * them privately: repeated constructions against the same
         * architecture (restarts, churn) skip the derivation entirely.
         */
        bool warm_contexts = true;
        /**
         * Test mode: every streamed compile also builds the DOM and
         * panics unless the streamed bytes equal the DOM dump.
         * Expensive; meaningless when `streamed` is off.
         */
        bool verify_streamed = false;
    };

    /** Monotonic counters for the fault-tolerance machinery. */
    struct Stats
    {
        std::uint64_t submitted = 0;
        std::uint64_t delivered = 0;
        std::uint64_t overloaded = 0;         ///< admission rejections
        std::uint64_t transient_failures = 0; ///< TransientErrors seen
        std::uint64_t retries = 0;            ///< re-enqueues scheduled
        std::uint64_t retries_exhausted = 0;  ///< Failed after budget
        std::uint64_t coalesced_served = 0;   ///< waiters served by a leader
        std::uint64_t coalesced_requeued = 0; ///< waiters re-run (leader failed)
        std::uint64_t snapshot_records_loaded = 0;
        std::uint64_t snapshot_records_skipped = 0;
        std::uint64_t snapshot_records_written = 0; ///< last flush
    };

    /**
     * One coherent health snapshot (ISSUE 8): the monotonic
     * fault-tolerance counters plus instantaneous queue/cache/uptime
     * figures, taken together so frontends (the zac_serve /healthz
     * endpoint, CLIs) report one consistent view instead of stitching
     * racing accessor calls.
     */
    struct ServiceStats
    {
        Stats counters;           ///< monotonic counters (see Stats)
        ResultCache::Stats cache; ///< hits/misses/entries
        std::size_t queue_depth = 0; ///< jobs waiting in the MPMC queue
        std::uint64_t pending = 0;   ///< submitted - delivered
        int workers = 0;
        double uptime_seconds = 0.0; ///< since construction
        bool draining = false;       ///< drainAndStop() in progress
        /** Process-wide warm-context pool counters (hits/misses/
         *  evictions/build time), snapshotted with the rest. */
        WarmContextPool::Stats warm;
    };

    using ResultSink = std::function<void(const JobRecord &)>;

    /** One job submission. */
    struct Submission
    {
        std::string name;    ///< label (defaults to circuit name)
        Circuit circuit;
        int target = 0;      ///< index into targets()
        /** Per-job deterministic seed override; when set, the target's
         *  options are re-digested with this seed (distinct cache
         *  entry, reproducible independent of submission order). */
        std::optional<std::uint64_t> seed;
        /** Per-job wall-clock timeout; <= 0 means none. */
        double timeout_seconds = 0.0;
    };

    CompileService(std::vector<CompileTarget> targets, Config config,
                   ResultSink sink);
    ~CompileService();

    CompileService(const CompileService &) = delete;
    CompileService &operator=(const CompileService &) = delete;

    int numTargets() const { return static_cast<int>(targets_.size()); }
    /** The target @p index jobs can reference in Submission::target. */
    const CompileTarget &target(int index) const;
    int numWorkers() const { return num_workers_; }

    /**
     * Enqueue one job; blocks while the queue is full (unless an
     * admission high-water mark is configured, in which case an
     * over-limit submission is rejected immediately with an
     * `overloaded` terminal record through the sink). During and after
     * a drain, submissions are likewise rejected as overloaded.
     * @return the job id (also echoed in the JobRecord).
     * @throws FatalError on an invalid target index or after shutdown.
     */
    std::uint64_t submit(Submission s);

    /**
     * Request cancellation of a pending or running job. Queued jobs are
     * dropped at pickup; running jobs stop at the next compile phase
     * boundary. Either way the sink still receives a (Cancelled)
     * record.
     * @return false if the job already completed (or never existed).
     */
    bool cancel(std::uint64_t job_id);

    /** Block until every job submitted so far has been delivered. */
    void drain();

    /**
     * Graceful stop: refuse new admissions (rejected as overloaded),
     * finish in-flight and queued work, flush the cache snapshot (when
     * configured), close the queue, and join the workers. When
     * @p deadline_seconds > 0 and in-flight work outlasts it, every
     * live job is cancelled cooperatively and the drain completes with
     * Cancelled records. Idempotent.
     * @return true when all work finished without the deadline forcing
     *         cancellations.
     */
    bool drainAndStop(double deadline_seconds = 0.0);

    /** Drain, stop the workers, and close the queue; idempotent.
     *  Equivalent to drainAndStop() with no deadline. */
    void shutdown();

    ResultCache::Stats cacheStats() const;
    /** Fault-tolerance counters (retry/dedup/admission/persistence). */
    Stats stats() const;
    /** One coherent liveness snapshot for health endpoints. */
    ServiceStats serviceStats() const;
    /** Tolerant-loader counters from the construction-time snapshot
     *  load; zeros when no snapshot was configured or found. */
    const SnapshotLoadStats &snapshotLoadStats() const
    {
        return snapshot_load_;
    }

  private:
    struct TargetState
    {
        CompileTarget target;
        /** Shared architecture context (pool-acquired when
         *  Config::warm_contexts, privately built otherwise). */
        std::shared_ptr<const ArchContext> context;
        std::shared_ptr<const ZacCompiler> compiler;
        std::uint64_t arch_fingerprint = 0;
        std::uint64_t options_digest = 0;
    };

    struct Job
    {
        std::uint64_t id = 0;
        std::string name;
        Circuit circuit;
        int target = 0;
        std::optional<std::uint64_t> seed;
        double timeout_seconds = 0.0;
        int attempt = 1; ///< current compile attempt (1-based)
        std::chrono::steady_clock::time_point submit_time;
        std::shared_ptr<std::atomic<bool>> cancel_flag;
    };

    /** Jobs waiting on an identical in-flight compile. */
    struct InflightEntry
    {
        std::uint64_t leader_id = 0;
        std::vector<Job> waiters;
    };

    void workerLoop();
    /** @p scratch is the calling worker's reusable compile buffers
     *  (SA annealer state, scheduler tables), value-reset per use. */
    void runJob(Job &job, CompileScratch &scratch);
    /** Deliver a terminal record, then settle every waiter coalesced
     *  behind (record.job_id, key): serve them on Done, re-enqueue
     *  them when the leader failed. No-op for non-leaders. */
    void finishJob(JobRecord &record, const CacheKey &key,
                   std::chrono::steady_clock::time_point submit_time);
    /** Terminal record (or re-enqueue) for one coalesced waiter. */
    void settleWaiter(Job &waiter, const JobRecord &leader);
    void deliver(JobRecord &record,
                 std::chrono::steady_clock::time_point submit_time);
    /** Serve a cache/leader result, rebinding name metadata (a byte
     *  splice at the recorded name span) so the record is bit-identical
     *  to a fresh compile of the submission. */
    static std::shared_ptr<const ZacStreamedResult>
    reboundResult(std::shared_ptr<const ZacStreamedResult> hit,
                  const std::string &circuit_name);
    void flushSnapshot();

    std::vector<TargetState> targets_;
    Config config_;
    ResultSink sink_;
    int num_workers_ = 1;
    std::optional<FaultPlan> faults_;

    BoundedMpmcQueue<Job> queue_;
    ResultCache cache_;
    SnapshotLoadStats snapshot_load_;
    std::vector<std::thread> workers_;

    /** Serializes drainAndStop()/shutdown() against each other. */
    std::mutex stop_mutex_;

    std::mutex sink_mutex_;

    std::mutex inflight_mutex_;
    std::unordered_map<CacheKey, InflightEntry, CacheKeyHash>
        inflight_;

    const std::chrono::steady_clock::time_point start_time_ =
        std::chrono::steady_clock::now();

    mutable std::mutex state_mutex_;
    std::condition_variable all_done_;
    std::uint64_t next_job_id_ = 1;
    bool draining_ = false;
    bool shutdown_ = false;
    Stats stats_;
    /** Cancel flags of jobs not yet delivered, by job id. */
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<std::atomic<bool>>>
        live_jobs_;
};

} // namespace zac::service

#endif // ZAC_SERVICE_SERVICE_HPP
