#include "transpile/u2_math.hpp"

#include <cmath>
#include <numbers>

#include "common/logging.hpp"

namespace zac
{

namespace
{

constexpr double kPi = std::numbers::pi;
using Cplx = std::complex<double>;

const Cplx kI{0.0, 1.0};

Cplx
expI(double a)
{
    return {std::cos(a), std::sin(a)};
}

/** Normalize an angle to (-pi, pi]. */
double
wrapAngle(double a)
{
    a = std::fmod(a, 2.0 * kPi);
    if (a <= -kPi)
        a += 2.0 * kPi;
    else if (a > kPi)
        a -= 2.0 * kPi;
    return a;
}

} // namespace

U2Matrix
U2Matrix::identity()
{
    U2Matrix u;
    u.m[0][0] = 1.0;
    u.m[0][1] = 0.0;
    u.m[1][0] = 0.0;
    u.m[1][1] = 1.0;
    return u;
}

U2Matrix
U2Matrix::operator*(const U2Matrix &rhs) const
{
    U2Matrix out;
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            out.m[i][j] = m[i][0] * rhs.m[0][j] + m[i][1] * rhs.m[1][j];
    return out;
}

bool
U2Matrix::isUnitary(double tol) const
{
    // U * U^dag
    Cplx p00 = m[0][0] * std::conj(m[0][0]) + m[0][1] * std::conj(m[0][1]);
    Cplx p01 = m[0][0] * std::conj(m[1][0]) + m[0][1] * std::conj(m[1][1]);
    Cplx p11 = m[1][0] * std::conj(m[1][0]) + m[1][1] * std::conj(m[1][1]);
    return std::abs(p00 - 1.0) < tol && std::abs(p01) < tol &&
           std::abs(p11 - 1.0) < tol;
}

bool
U2Matrix::isIdentity(double tol) const
{
    if (std::abs(m[0][1]) > tol || std::abs(m[1][0]) > tol)
        return false;
    // Diagonal entries must share a phase.
    return std::abs(m[0][0] - m[1][1]) < tol &&
           std::abs(std::abs(m[0][0]) - 1.0) < tol;
}

bool
U2Matrix::isDiagonal(double tol) const
{
    return std::abs(m[0][1]) < tol && std::abs(m[1][0]) < tol;
}

double
U2Matrix::phaseDistance(const U2Matrix &rhs) const
{
    // Align global phase on the largest-magnitude entry, then take the
    // max elementwise distance.
    int bi = 0, bj = 0;
    double best = 0.0;
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            if (std::abs(m[i][j]) > best) {
                best = std::abs(m[i][j]);
                bi = i;
                bj = j;
            }
    if (best < 1e-12 || std::abs(rhs.m[bi][bj]) < 1e-12)
        return 1.0;
    const Cplx phase = (m[bi][bj] / std::abs(m[bi][bj])) /
                       (rhs.m[bi][bj] / std::abs(rhs.m[bi][bj]));
    double dist = 0.0;
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            dist = std::max(dist, std::abs(m[i][j] - phase * rhs.m[i][j]));
    return dist;
}

U2Matrix
u3Matrix(double theta, double phi, double lambda)
{
    U2Matrix u;
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    u.m[0][0] = c;
    u.m[0][1] = -expI(lambda) * s;
    u.m[1][0] = expI(phi) * s;
    u.m[1][1] = expI(phi + lambda) * c;
    return u;
}

U2Matrix
u3Matrix(const U3Angles &a)
{
    return u3Matrix(a.theta, a.phi, a.lambda);
}

U2Matrix
gateMatrix(const Gate &g)
{
    if (!g.is1Q())
        fatal("gateMatrix: " + std::string(opName(g.op)) +
              " is not a 1Q gate");
    const auto p = [&](std::size_t i) { return g.params[i]; };
    switch (g.op) {
      case Op::I:
        return U2Matrix::identity();
      case Op::X:
        return u3Matrix(kPi, 0.0, kPi);
      case Op::Y:
        return u3Matrix(kPi, kPi / 2.0, kPi / 2.0);
      case Op::Z:
        return u3Matrix(0.0, 0.0, kPi);
      case Op::H:
        return u3Matrix(kPi / 2.0, 0.0, kPi);
      case Op::S:
        return u3Matrix(0.0, 0.0, kPi / 2.0);
      case Op::Sdg:
        return u3Matrix(0.0, 0.0, -kPi / 2.0);
      case Op::T:
        return u3Matrix(0.0, 0.0, kPi / 4.0);
      case Op::Tdg:
        return u3Matrix(0.0, 0.0, -kPi / 4.0);
      case Op::SX: {
        // sqrt(X) = e^{i pi/4} RX(pi/2)
        U2Matrix u;
        u.m[0][0] = Cplx(0.5, 0.5);
        u.m[0][1] = Cplx(0.5, -0.5);
        u.m[1][0] = Cplx(0.5, -0.5);
        u.m[1][1] = Cplx(0.5, 0.5);
        return u;
      }
      case Op::SXdg: {
        U2Matrix u;
        u.m[0][0] = Cplx(0.5, -0.5);
        u.m[0][1] = Cplx(0.5, 0.5);
        u.m[1][0] = Cplx(0.5, 0.5);
        u.m[1][1] = Cplx(0.5, -0.5);
        return u;
      }
      case Op::RX: {
        U2Matrix u;
        const double c = std::cos(p(0) / 2.0), s = std::sin(p(0) / 2.0);
        u.m[0][0] = c;
        u.m[0][1] = -kI * s;
        u.m[1][0] = -kI * s;
        u.m[1][1] = c;
        return u;
      }
      case Op::RY:
        return u3Matrix(p(0), 0.0, 0.0);
      case Op::RZ: {
        U2Matrix u;
        u.m[0][0] = expI(-p(0) / 2.0);
        u.m[0][1] = 0.0;
        u.m[1][0] = 0.0;
        u.m[1][1] = expI(p(0) / 2.0);
        return u;
      }
      case Op::P:
      case Op::U1:
        return u3Matrix(0.0, 0.0, p(0));
      case Op::U2:
        return u3Matrix(kPi / 2.0, p(0), p(1));
      case Op::U3:
        return u3Matrix(p(0), p(1), p(2));
      default:
        fatal("gateMatrix: unhandled opcode");
    }
}

U3Angles
extractU3(const U2Matrix &u)
{
    if (!u.isUnitary(1e-6))
        fatal("extractU3: matrix is not unitary");
    // Remove global phase: scale so det == 1 (SU(2)).
    const Cplx det = u.m[0][0] * u.m[1][1] - u.m[0][1] * u.m[1][0];
    const double det_arg = std::arg(det);
    const Cplx scale = expI(-det_arg / 2.0);
    const Cplx a = scale * u.m[0][0];
    const Cplx b = scale * u.m[1][0];
    // SU(2): a = cos(t/2) e^{-i(phi+lambda)/2}, b = sin(t/2) e^{i(phi-lambda)/2}
    U3Angles out;
    const double abs_a = std::min(1.0, std::abs(a));
    const double abs_b = std::min(1.0, std::abs(b));
    out.theta = 2.0 * std::atan2(abs_b, abs_a);
    if (abs_b < 1e-12) {
        // Diagonal: only phi+lambda is defined; put it all in lambda.
        out.phi = 0.0;
        out.lambda = wrapAngle(-2.0 * std::arg(a));
    } else if (abs_a < 1e-12) {
        // Anti-diagonal: only phi-lambda is defined.
        out.phi = wrapAngle(2.0 * std::arg(b));
        out.lambda = 0.0;
    } else {
        const double sum = -2.0 * std::arg(a); // phi + lambda
        const double diff = 2.0 * std::arg(b); // phi - lambda
        out.phi = wrapAngle((sum + diff) / 2.0);
        out.lambda = wrapAngle((sum - diff) / 2.0);
    }
    return out;
}

} // namespace zac
