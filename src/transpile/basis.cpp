#include "transpile/basis.hpp"

#include <numbers>

#include "common/logging.hpp"

namespace zac
{

namespace
{

constexpr double kPi = std::numbers::pi;

class Lowerer
{
  public:
    explicit Lowerer(const Circuit &in)
        : out_(in.numQubits(), in.name()), in_(in)
    {
    }

    Circuit
    run()
    {
        std::vector<bool> measured(
            static_cast<std::size_t>(in_.numQubits()), false);
        for (const Gate &g : in_.gates()) {
            if (g.op == Op::Measure) {
                measured[static_cast<std::size_t>(g.qubits[0])] = true;
                continue;
            }
            if (g.op == Op::Reset)
                fatal("basis: reset is not supported on this target");
            for (int q : g.qubits)
                if (measured[static_cast<std::size_t>(q)])
                    fatal("basis: mid-circuit measurement is not "
                          "supported");
            lower(g);
        }
        return std::move(out_);
    }

  private:
    void cx(int c, int t)
    {
        out_.h(t);
        out_.cz(c, t);
        out_.h(t);
    }

    void
    lower(const Gate &g)
    {
        switch (g.op) {
          // 1Q gates and barriers pass through.
          default:
            if (g.is1Q() || g.op == Op::Barrier) {
                out_.add(g);
                return;
            }
            fatal("basis: unhandled opcode " + std::string(opName(g.op)));
          case Op::CZ:
            out_.add(g);
            return;
          case Op::CX:
            cx(g.qubits[0], g.qubits[1]);
            return;
          case Op::CY: {
            const int c = g.qubits[0], t = g.qubits[1];
            out_.sdg(t);
            cx(c, t);
            out_.s(t);
            return;
          }
          case Op::CH: {
            const int c = g.qubits[0], t = g.qubits[1];
            out_.s(t);
            out_.h(t);
            out_.t(t);
            cx(c, t);
            out_.tdg(t);
            out_.h(t);
            out_.sdg(t);
            return;
          }
          case Op::SWAP: {
            const int a = g.qubits[0], b = g.qubits[1];
            cx(a, b);
            cx(b, a);
            cx(a, b);
            return;
          }
          case Op::CP:
          case Op::CU1: {
            const int c = g.qubits[0], t = g.qubits[1];
            const double th = g.params[0];
            out_.rz(c, th / 2.0);
            cx(c, t);
            out_.rz(t, -th / 2.0);
            cx(c, t);
            out_.rz(t, th / 2.0);
            return;
          }
          case Op::CRZ: {
            const int c = g.qubits[0], t = g.qubits[1];
            const double th = g.params[0];
            out_.rz(t, th / 2.0);
            cx(c, t);
            out_.rz(t, -th / 2.0);
            cx(c, t);
            return;
          }
          case Op::CRY: {
            const int c = g.qubits[0], t = g.qubits[1];
            const double th = g.params[0];
            out_.ry(t, th / 2.0);
            cx(c, t);
            out_.ry(t, -th / 2.0);
            cx(c, t);
            return;
          }
          case Op::CRX: {
            const int c = g.qubits[0], t = g.qubits[1];
            const double th = g.params[0];
            out_.h(t);
            out_.rz(t, th / 2.0);
            cx(c, t);
            out_.rz(t, -th / 2.0);
            cx(c, t);
            out_.h(t);
            return;
          }
          case Op::RZZ: {
            const int a = g.qubits[0], b = g.qubits[1];
            cx(a, b);
            out_.rz(b, g.params[0]);
            cx(a, b);
            return;
          }
          case Op::RXX: {
            const int a = g.qubits[0], b = g.qubits[1];
            out_.h(a);
            out_.h(b);
            cx(a, b);
            out_.rz(b, g.params[0]);
            cx(a, b);
            out_.h(a);
            out_.h(b);
            return;
          }
          case Op::CCX: {
            const int a = g.qubits[0], b = g.qubits[1], t = g.qubits[2];
            out_.h(t);
            cx(b, t);
            out_.tdg(t);
            cx(a, t);
            out_.t(t);
            cx(b, t);
            out_.tdg(t);
            cx(a, t);
            out_.t(b);
            out_.t(t);
            out_.h(t);
            cx(a, b);
            out_.t(a);
            out_.tdg(b);
            cx(a, b);
            return;
          }
          case Op::CSWAP: {
            const int c = g.qubits[0], a = g.qubits[1], b = g.qubits[2];
            cx(b, a);
            lower(Gate(Op::CCX, {c, a, b}));
            cx(b, a);
            return;
          }
        }
    }

    Circuit out_;
    const Circuit &in_;
};

} // namespace

Circuit
lowerToCzBasis(const Circuit &circuit)
{
    Lowerer lowerer(circuit);
    Circuit out = lowerer.run();
    // Validate the contract.
    for (const Gate &g : out.gates())
        if (g.is2Q() && g.op != Op::CZ)
            panic("basis: non-CZ 2Q gate survived lowering");
    return out;
}

} // namespace zac
