/**
 * @file
 * ASAP scheduling of a preprocessed circuit into gate stages (Fig. 4).
 *
 * The output alternates 1Q-gate stages and Rydberg stages:
 *
 *   oneQ[0], rydberg[0], oneQ[1], rydberg[1], ..., oneQ[T]
 *
 * oneQ[t] holds the U3s that must execute before rydberg[t]; the final
 * oneQ[T] holds trailing U3s. Every qubit appears in at most one gate per
 * Rydberg stage, and stages respect a site-capacity limit so stages never
 * exceed the entanglement zone.
 */

#ifndef ZAC_TRANSPILE_STAGES_HPP
#define ZAC_TRANSPILE_STAGES_HPP

#include <limits>
#include <vector>

#include "circuit/circuit.hpp"
#include "transpile/u2_math.hpp"

namespace zac
{

/** One 2Q gate scheduled into a Rydberg stage. */
struct StagedGate
{
    int id = -1;    ///< dense gate id, unique across the staged circuit
    int q0 = -1;    ///< first qubit operand
    int q1 = -1;    ///< second qubit operand

    /** @return true if this gate acts on qubit @p q. */
    bool touches(int q) const { return q0 == q || q1 == q; }
    /** @return the other operand given one of the two. */
    int other(int q) const { return q0 == q ? q1 : q0; }
};

/** One scheduled 1Q operation. */
struct StagedU3
{
    int qubit = -1;
    U3Angles angles;
};

/** A Rydberg stage: 2Q gates applied in one laser exposure. */
struct RydbergStage
{
    std::vector<StagedGate> gates;
};

/** A 1Q stage: U3s executed between Rydberg exposures. */
struct OneQStage
{
    std::vector<StagedU3> ops;
};

/** The staged circuit: the unit of work for placement and scheduling. */
class StagedCircuit
{
  public:
    int numQubits = 0;
    std::string name;
    /** oneQ.size() == rydberg.size() + 1; oneQ[t] precedes rydberg[t]. */
    std::vector<OneQStage> oneQ;
    std::vector<RydbergStage> rydberg;

    /** Number of Rydberg stages. */
    int numRydbergStages() const
    {
        return static_cast<int>(rydberg.size());
    }

    /** Total 2Q gate count. */
    int count2Q() const;
    /** Total 1Q gate count. */
    int count1Q() const;

    /** The gate acting on qubit @p q in stage @p t, or nullptr. */
    const StagedGate *gateOn(int t, int q) const;

    /** Validate structural invariants; throws PanicError on violation. */
    void checkInvariants() const;
};

/**
 * Schedule a preprocessed ({CZ, U3} only) circuit into stages, ASAP.
 *
 * @param circuit        preprocessed circuit (see zac::preprocess).
 * @param stage_capacity max 2Q gates per Rydberg stage (the number of
 *                       Rydberg sites in the target's entanglement
 *                       zones); unlimited by default.
 */
StagedCircuit scheduleStages(
    const Circuit &circuit,
    int stage_capacity = std::numeric_limits<int>::max());

} // namespace zac

#endif // ZAC_TRANSPILE_STAGES_HPP
