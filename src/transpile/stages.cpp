#include "transpile/stages.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace zac
{

int
StagedCircuit::count2Q() const
{
    int n = 0;
    for (const RydbergStage &s : rydberg)
        n += static_cast<int>(s.gates.size());
    return n;
}

int
StagedCircuit::count1Q() const
{
    int n = 0;
    for (const OneQStage &s : oneQ)
        n += static_cast<int>(s.ops.size());
    return n;
}

const StagedGate *
StagedCircuit::gateOn(int t, int q) const
{
    for (const StagedGate &g : rydberg[static_cast<std::size_t>(t)].gates)
        if (g.touches(q))
            return &g;
    return nullptr;
}

void
StagedCircuit::checkInvariants() const
{
    if (oneQ.size() != rydberg.size() + 1)
        panic("staged circuit: oneQ/rydberg stage count mismatch");
    std::vector<int> seen(static_cast<std::size_t>(numQubits), -1);
    int expected_id = 0;
    for (std::size_t t = 0; t < rydberg.size(); ++t) {
        for (const StagedGate &g : rydberg[t].gates) {
            if (g.id != expected_id++)
                panic("staged circuit: gate ids not dense/in order");
            if (g.q0 == g.q1)
                panic("staged circuit: degenerate gate");
            for (int q : {g.q0, g.q1}) {
                if (q < 0 || q >= numQubits)
                    panic("staged circuit: qubit out of range");
                if (seen[static_cast<std::size_t>(q)] ==
                    static_cast<int>(t))
                    panic("staged circuit: qubit in two gates in stage");
                seen[static_cast<std::size_t>(q)] = static_cast<int>(t);
            }
        }
    }
}

StagedCircuit
scheduleStages(const Circuit &circuit, int stage_capacity)
{
    if (stage_capacity < 1)
        fatal("scheduleStages: capacity must be >= 1");

    StagedCircuit out;
    out.numQubits = circuit.numQubits();
    out.name = circuit.name();

    // next_stage[q]: earliest Rydberg stage the next gate on q may use.
    std::vector<int> next_stage(
        static_cast<std::size_t>(circuit.numQubits()), 0);
    std::vector<int> stage_load; // gates per stage so far

    // pending_u3[q]: U3 waiting to be attached to q's next Rydberg stage.
    std::vector<std::vector<StagedU3>> pending(
        static_cast<std::size_t>(circuit.numQubits()));

    auto ensure_stage = [&](int t) {
        while (static_cast<int>(out.rydberg.size()) <= t) {
            out.rydberg.emplace_back();
            out.oneQ.emplace_back();
            stage_load.push_back(0);
        }
    };

    int gate_id = 0;
    for (const Gate &g : circuit.gates()) {
        if (g.op == Op::U3) {
            const auto q = static_cast<std::size_t>(g.qubits[0]);
            pending[q].push_back(
                {g.qubits[0],
                 {g.params[0], g.params[1], g.params[2]}});
            continue;
        }
        if (g.op != Op::CZ)
            fatal("scheduleStages: input must be preprocessed to "
                  "{CZ, U3}, found " + std::string(opName(g.op)));
        const int a = g.qubits[0];
        const int b = g.qubits[1];
        int t = std::max(next_stage[static_cast<std::size_t>(a)],
                         next_stage[static_cast<std::size_t>(b)]);
        ensure_stage(t);
        while (stage_load[static_cast<std::size_t>(t)] >= stage_capacity) {
            ++t;
            ensure_stage(t);
        }
        StagedGate sg;
        sg.id = gate_id++;
        sg.q0 = a;
        sg.q1 = b;
        out.rydberg[static_cast<std::size_t>(t)].gates.push_back(sg);
        ++stage_load[static_cast<std::size_t>(t)];
        // Attach any pending 1Q ops to the 1Q stage right before t.
        for (int q : {a, b}) {
            auto &pq = pending[static_cast<std::size_t>(q)];
            for (StagedU3 &u : pq)
                out.oneQ[static_cast<std::size_t>(t)].ops.push_back(u);
            pq.clear();
            next_stage[static_cast<std::size_t>(q)] = t + 1;
        }
    }

    // Trailing 1Q stage.
    out.oneQ.emplace_back();
    for (auto &pq : pending) {
        for (StagedU3 &u : pq)
            out.oneQ.back().ops.push_back(u);
        pq.clear();
    }

    // Gate ids must be dense in stage order; the ASAP loop assigns ids in
    // program order which may interleave stages, so renumber.
    int id = 0;
    for (RydbergStage &s : out.rydberg)
        for (StagedGate &g : s.gates)
            g.id = id++;

    out.checkInvariants();
    return out;
}

} // namespace zac
