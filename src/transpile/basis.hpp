/**
 * @file
 * Lowering to the neutral-atom hardware gate set {CZ, U3}.
 *
 * Mirrors the "resynthesis" half of the paper's preprocessing (Sec. IV):
 * every multi-qubit gate is decomposed into CZ plus 1Q gates. The 1Q
 * gates are left in their original named form; merging them into single
 * U3s is the optimizer's job (optimize.hpp).
 */

#ifndef ZAC_TRANSPILE_BASIS_HPP
#define ZAC_TRANSPILE_BASIS_HPP

#include "circuit/circuit.hpp"

namespace zac
{

/**
 * Decompose @p circuit into {CZ, 1Q gates, Barrier}.
 *
 * Measurements at the end of the circuit are dropped (the fidelity model
 * does not charge for readout); a measurement followed by more gates is
 * rejected since mid-circuit measurement is future work in the paper.
 */
Circuit lowerToCzBasis(const Circuit &circuit);

} // namespace zac

#endif // ZAC_TRANSPILE_BASIS_HPP
