#include "transpile/optimize.hpp"

#include <optional>
#include <vector>

#include "common/logging.hpp"
#include "transpile/basis.hpp"
#include "transpile/u2_math.hpp"

namespace zac
{

namespace
{

constexpr double kIdentityTol = 1e-9;

class Optimizer
{
  public:
    explicit Optimizer(const Circuit &in)
        : in_(in),
          pending_(static_cast<std::size_t>(in.numQubits()),
                   U2Matrix::identity()),
          hasPending_(static_cast<std::size_t>(in.numQubits()), false),
          lastCz_(static_cast<std::size_t>(in.numQubits()), -1)
    {
    }

    Circuit
    run()
    {
        for (const Gate &g : in_.gates()) {
            if (g.op == Op::Barrier) {
                flushAll();
                // A barrier also fences CZ cancellation.
                for (auto &lc : lastCz_)
                    lc = -1;
                continue;
            }
            if (g.is1Q()) {
                const auto q = static_cast<std::size_t>(g.qubits[0]);
                pending_[q] = gateMatrix(g) * pending_[q];
                hasPending_[q] = true;
                continue;
            }
            if (g.op != Op::CZ)
                fatal("optimize1Q: input must be in the {CZ,1Q} basis");
            emitCz(g.qubits[0], g.qubits[1]);
        }
        flushAll();
        Circuit result(in_.numQubits(), in_.name());
        for (const std::optional<Gate> &g : out_)
            if (g.has_value())
                result.add(*g);
        return result;
    }

  private:
    void
    flushQubit(int q)
    {
        const auto qi = static_cast<std::size_t>(q);
        if (!hasPending_[qi])
            return;
        hasPending_[qi] = false;
        const U2Matrix u = pending_[qi];
        pending_[qi] = U2Matrix::identity();
        if (u.isIdentity(kIdentityTol))
            return;
        const U3Angles a = extractU3(u);
        out_.emplace_back(Gate(Op::U3, {q}, {a.theta, a.phi, a.lambda}));
        lastCz_[qi] = -1;
    }

    void
    flushAll()
    {
        for (int q = 0; q < in_.numQubits(); ++q)
            flushQubit(q);
    }

    void
    emitCz(int a, int b)
    {
        const auto ai = static_cast<std::size_t>(a);
        const auto bi = static_cast<std::size_t>(b);
        // CZ-CZ cancellation: if the immediately preceding emitted gate
        // on both qubits is the same CZ and no 1Q gate intervenes
        // (pending identity counts as no gate), drop the pair.
        const bool a_clean =
            !hasPending_[ai] || pending_[ai].isIdentity(kIdentityTol);
        const bool b_clean =
            !hasPending_[bi] || pending_[bi].isIdentity(kIdentityTol);
        if (a_clean && b_clean && lastCz_[ai] >= 0 &&
            lastCz_[ai] == lastCz_[bi]) {
            // (identical adjacent CZ pair cancels)
            const auto idx = static_cast<std::size_t>(lastCz_[ai]);
            const Gate &prev = *out_[idx];
            if ((prev.qubits[0] == a && prev.qubits[1] == b) ||
                (prev.qubits[0] == b && prev.qubits[1] == a)) {
                out_[idx].reset();
                // Clear the no-op pendings accumulated since.
                hasPending_[ai] = hasPending_[bi] = false;
                pending_[ai] = U2Matrix::identity();
                pending_[bi] = U2Matrix::identity();
                lastCz_[ai] = lastCz_[bi] = -1;
                return;
            }
        }
        // Diagonal (RZ-like) pendings commute with CZ, so they can stay
        // pending and keep merging with later 1Q gates (this is what
        // collapses the RZ chains in QFT-style CP ladders).
        if (hasPending_[ai] && !pending_[ai].isDiagonal(kIdentityTol))
            flushQubit(a);
        if (hasPending_[bi] && !pending_[bi].isDiagonal(kIdentityTol))
            flushQubit(b);
        out_.emplace_back(Gate(Op::CZ, {a, b}));
        lastCz_[ai] = lastCz_[bi] = static_cast<int>(out_.size()) - 1;
    }

    const Circuit &in_;
    std::vector<U2Matrix> pending_;
    std::vector<char> hasPending_;
    std::vector<int> lastCz_;
    std::vector<std::optional<Gate>> out_;
};

} // namespace

Circuit
optimize1Q(const Circuit &circuit)
{
    Optimizer opt(circuit);
    return opt.run();
}

Circuit
preprocess(const Circuit &circuit)
{
    return optimize1Q(lowerToCzBasis(circuit));
}

} // namespace zac
