/**
 * @file
 * 1Q gate optimization over the {CZ, U3} basis.
 *
 * Mirrors the "single-qubit gate optimization" half of the paper's
 * preprocessing (Sec. IV, Fig. 4): runs of 1Q gates between CZs are
 * multiplied out and re-emitted as one U3; identities are dropped; pairs
 * of identical adjacent CZs cancel.
 */

#ifndef ZAC_TRANSPILE_OPTIMIZE_HPP
#define ZAC_TRANSPILE_OPTIMIZE_HPP

#include "circuit/circuit.hpp"

namespace zac
{

/**
 * Optimize a circuit already lowered to {CZ, 1Q, Barrier}.
 *
 * Output contains only {CZ, U3}; barriers are honoured as optimization
 * fences and then removed. At most one U3 appears on a qubit between
 * consecutive CZs touching it.
 *
 * @throws zac::FatalError if @p circuit contains other 2Q gates
 *         (run lowerToCzBasis first).
 */
Circuit optimize1Q(const Circuit &circuit);

/** Convenience: lowerToCzBasis + optimize1Q. */
Circuit preprocess(const Circuit &circuit);

} // namespace zac

#endif // ZAC_TRANSPILE_OPTIMIZE_HPP
