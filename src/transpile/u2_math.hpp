/**
 * @file
 * 2x2 unitary arithmetic and U3 angle extraction.
 *
 * The neutral-atom hardware executes arbitrary single-qubit gates as
 * U3(theta, phi, lambda); this module converts any product of qelib1
 * 1Q gates into a single U3 (up to global phase).
 */

#ifndef ZAC_TRANSPILE_U2_MATH_HPP
#define ZAC_TRANSPILE_U2_MATH_HPP

#include <complex>

#include "circuit/gate.hpp"

namespace zac
{

/** Parameters of a U3 gate (angles in radians). */
struct U3Angles
{
    double theta = 0.0;
    double phi = 0.0;
    double lambda = 0.0;
};

/** A 2x2 complex matrix (row-major), used for 1Q unitaries. */
struct U2Matrix
{
    std::complex<double> m[2][2];

    static U2Matrix identity();

    /** Matrix product this * rhs. */
    U2Matrix operator*(const U2Matrix &rhs) const;

    /** @return true if unitary up to @p tol (U * U^dag == I). */
    bool isUnitary(double tol = 1e-9) const;

    /** @return true if proportional to the identity (global phase only). */
    bool isIdentity(double tol = 1e-9) const;

    /** @return true if diagonal (an RZ-like gate, commutes with CZ). */
    bool isDiagonal(double tol = 1e-9) const;

    /** Max-norm distance to @p rhs up to global phase. */
    double phaseDistance(const U2Matrix &rhs) const;
};

/** The matrix of U3(theta, phi, lambda). */
U2Matrix u3Matrix(double theta, double phi, double lambda);

/** The matrix of U3(a). */
U2Matrix u3Matrix(const U3Angles &a);

/**
 * The matrix of a 1Q opcode with its parameters.
 * @throws zac::FatalError if @p g is not a 1Q unitary.
 */
U2Matrix gateMatrix(const Gate &g);

/**
 * Extract U3 angles reproducing @p u up to global phase.
 * theta is normalized to [0, pi]; phi, lambda to (-pi, pi].
 */
U3Angles extractU3(const U2Matrix &u);

} // namespace zac

#endif // ZAC_TRANSPILE_U2_MATH_HPP
