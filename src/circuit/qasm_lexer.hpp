/**
 * @file
 * Tokenizer for OpenQASM 2.0 source text.
 */

#ifndef ZAC_CIRCUIT_QASM_LEXER_HPP
#define ZAC_CIRCUIT_QASM_LEXER_HPP

#include <string>
#include <vector>

namespace zac::qasm
{

/** Token categories produced by the lexer. */
enum class TokKind
{
    Identifier,   // qreg, gate names, register names, keywords
    Real,         // 1.5, .25, 2e-3
    Integer,      // 42
    String,       // "qelib1.inc"
    Symbol,       // one of ; , ( ) [ ] { } + - * / ^ ->  ==
    End,
};

/** A single token with source position for diagnostics. */
struct Token
{
    TokKind kind = TokKind::End;
    std::string text;
    int line = 0;
    int col = 0;
};

/**
 * Tokenize OpenQASM 2.0 text.
 *
 * Strips // line comments. Throws zac::FatalError on invalid characters.
 * The final token is always TokKind::End.
 */
std::vector<Token> lex(const std::string &source);

} // namespace zac::qasm

#endif // ZAC_CIRCUIT_QASM_LEXER_HPP
