#include "circuit/qasm_parser.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <numbers>
#include <sstream>
#include <stdexcept>

#include "circuit/qasm_lexer.hpp"
#include "common/logging.hpp"

namespace zac::qasm
{

namespace
{

/** A user-defined gate body: formal parameter and qubit names + ops. */
struct GateDef
{
    std::vector<std::string> params;
    std::vector<std::string> qubits;
    struct BodyOp
    {
        std::string name;
        // Expressions are re-parsed per call with actual parameter
        // bindings, so we store them as token ranges.
        std::vector<std::vector<Token>> arg_exprs;
        std::vector<std::string> arg_qubits;
    };
    std::vector<BodyOp> body;
};

class Parser
{
  public:
    Parser(const std::string &source, const std::string &name)
        : tokens_(lex(source)), name_(name)
    {
    }

    Circuit
    run()
    {
        parseHeader();
        while (!at(TokKind::End))
            parseStatement();
        Circuit circuit(totalQubits_, name_);
        for (Gate &g : out_)
            circuit.add(std::move(g));
        return circuit;
    }

  private:
    // ----- token helpers ---------------------------------------------
    const Token &cur() const { return tokens_[pos_]; }

    bool
    at(TokKind k, const std::string &text = "") const
    {
        return cur().kind == k && (text.empty() || cur().text == text);
    }

    Token
    take()
    {
        Token t = cur();
        if (t.kind != TokKind::End)
            ++pos_;
        return t;
    }

    [[noreturn]] void
    error(const std::string &msg) const
    {
        fatal("qasm parse error at line " + std::to_string(cur().line) +
              ", col " + std::to_string(cur().col) + ": " + msg +
              " (near '" + cur().text + "')");
    }

    Token
    expect(TokKind k, const std::string &text = "")
    {
        if (!at(k, text))
            error("expected " + (text.empty() ? "token" : "'" + text + "'"));
        return take();
    }

    std::string
    expectIdent()
    {
        if (!at(TokKind::Identifier))
            error("expected identifier");
        return take().text;
    }

    /**
     * Take an Integer token as an int. std::stoi throws
     * std::out_of_range on overflowing literals (e.g. a qreg sized
     * 99999999999999999999), which would escape the parser's
     * fatal()/FatalError contract — convert while the token is still
     * current so error() reports its line/column.
     */
    int
    expectInt()
    {
        if (!at(TokKind::Integer))
            error("expected integer literal");
        int value = 0;
        try {
            std::size_t used = 0;
            value = std::stoi(cur().text, &used);
            if (used != cur().text.size())
                error("malformed integer literal");
        } catch (const std::out_of_range &) {
            error("integer literal out of range");
        } catch (const std::invalid_argument &) {
            error("malformed integer literal");
        }
        take();
        return value;
    }

    // ----- grammar ----------------------------------------------------
    void
    parseHeader()
    {
        if (at(TokKind::Identifier, "OPENQASM")) {
            take();
            take(); // version number
            expect(TokKind::Symbol, ";");
        }
    }

    void
    parseStatement()
    {
        if (at(TokKind::Identifier, "include")) {
            take();
            expect(TokKind::String);
            expect(TokKind::Symbol, ";");
            return;
        }
        if (at(TokKind::Identifier, "qreg")) {
            take();
            const std::string reg = expectIdent();
            expect(TokKind::Symbol, "[");
            const int size = expectInt();
            expect(TokKind::Symbol, "]");
            expect(TokKind::Symbol, ";");
            if (qregs_.count(reg))
                error("duplicate qreg '" + reg + "'");
            qregs_[reg] = {totalQubits_, size};
            totalQubits_ += size;
            return;
        }
        if (at(TokKind::Identifier, "creg")) {
            take();
            expectIdent();
            expect(TokKind::Symbol, "[");
            expect(TokKind::Integer);
            expect(TokKind::Symbol, "]");
            expect(TokKind::Symbol, ";");
            return;
        }
        if (at(TokKind::Identifier, "gate")) {
            parseGateDef();
            return;
        }
        if (at(TokKind::Identifier, "opaque"))
            error("opaque gates are not supported");
        if (at(TokKind::Identifier, "if"))
            error("classically-controlled gates are not supported");
        if (at(TokKind::Identifier, "measure")) {
            take();
            auto qubits = parseQubitOperand();
            expect(TokKind::Symbol, "->");
            // Classical target: ident or ident[i]; ignored.
            expectIdent();
            if (at(TokKind::Symbol, "[")) {
                take();
                expect(TokKind::Integer);
                expect(TokKind::Symbol, "]");
            }
            expect(TokKind::Symbol, ";");
            for (int q : qubits)
                out_.emplace_back(Op::Measure, std::vector<int>{q});
            return;
        }
        if (at(TokKind::Identifier, "reset")) {
            take();
            auto qubits = parseQubitOperand();
            expect(TokKind::Symbol, ";");
            for (int q : qubits)
                out_.emplace_back(Op::Reset, std::vector<int>{q});
            return;
        }
        if (at(TokKind::Identifier, "barrier")) {
            take();
            // Operands are irrelevant for our IR; consume them.
            while (!at(TokKind::Symbol, ";"))
                take();
            expect(TokKind::Symbol, ";");
            out_.emplace_back(Op::Barrier, std::vector<int>{});
            return;
        }
        if (at(TokKind::Identifier))
            return parseGateCall();
        error("unexpected statement");
    }

    void
    parseGateDef()
    {
        expect(TokKind::Identifier, "gate");
        const std::string name = expectIdent();
        GateDef def;
        if (at(TokKind::Symbol, "(")) {
            take();
            if (!at(TokKind::Symbol, ")")) {
                def.params.push_back(expectIdent());
                while (at(TokKind::Symbol, ",")) {
                    take();
                    def.params.push_back(expectIdent());
                }
            }
            expect(TokKind::Symbol, ")");
        }
        def.qubits.push_back(expectIdent());
        while (at(TokKind::Symbol, ",")) {
            take();
            def.qubits.push_back(expectIdent());
        }
        expect(TokKind::Symbol, "{");
        while (!at(TokKind::Symbol, "}")) {
            GateDef::BodyOp op;
            if (at(TokKind::Identifier, "barrier")) {
                // barriers inside gate bodies are no-ops for us
                while (!at(TokKind::Symbol, ";"))
                    take();
                take();
                continue;
            }
            op.name = expectIdent();
            if (at(TokKind::Symbol, "(")) {
                take();
                if (!at(TokKind::Symbol, ")")) {
                    op.arg_exprs.push_back(captureExpr());
                    while (at(TokKind::Symbol, ",")) {
                        take();
                        op.arg_exprs.push_back(captureExpr());
                    }
                }
                expect(TokKind::Symbol, ")");
            }
            op.arg_qubits.push_back(expectIdent());
            while (at(TokKind::Symbol, ",")) {
                take();
                op.arg_qubits.push_back(expectIdent());
            }
            expect(TokKind::Symbol, ";");
            def.body.push_back(std::move(op));
        }
        expect(TokKind::Symbol, "}");
        gateDefs_[name] = std::move(def);
    }

    /** Capture an expression as raw tokens (until , or ) at depth 0). */
    std::vector<Token>
    captureExpr()
    {
        std::vector<Token> toks;
        int depth = 0;
        while (true) {
            if (at(TokKind::End))
                error("unterminated expression");
            if (depth == 0 &&
                (at(TokKind::Symbol, ",") || at(TokKind::Symbol, ")")))
                break;
            if (at(TokKind::Symbol, "("))
                ++depth;
            if (at(TokKind::Symbol, ")"))
                --depth;
            toks.push_back(take());
        }
        Token end;
        end.kind = TokKind::End;
        toks.push_back(end);
        return toks;
    }

    // Expression evaluation over captured tokens with a binding map.
    double
    evalExpr(const std::vector<Token> &toks,
             const std::map<std::string, double> &bindings) const
    {
        std::size_t p = 0;
        double v = evalAddSub(toks, p, bindings);
        if (toks[p].kind != TokKind::End)
            fatal("qasm: trailing tokens in expression");
        return v;
    }

    double
    evalAddSub(const std::vector<Token> &toks, std::size_t &p,
               const std::map<std::string, double> &b) const
    {
        double v = evalMulDiv(toks, p, b);
        while (toks[p].kind == TokKind::Symbol &&
               (toks[p].text == "+" || toks[p].text == "-")) {
            const bool add = toks[p].text == "+";
            ++p;
            const double rhs = evalMulDiv(toks, p, b);
            v = add ? v + rhs : v - rhs;
        }
        return v;
    }

    double
    evalMulDiv(const std::vector<Token> &toks, std::size_t &p,
               const std::map<std::string, double> &b) const
    {
        double v = evalPow(toks, p, b);
        while (toks[p].kind == TokKind::Symbol &&
               (toks[p].text == "*" || toks[p].text == "/")) {
            const bool mul = toks[p].text == "*";
            ++p;
            const double rhs = evalPow(toks, p, b);
            v = mul ? v * rhs : v / rhs;
        }
        return v;
    }

    double
    evalPow(const std::vector<Token> &toks, std::size_t &p,
            const std::map<std::string, double> &b) const
    {
        const double base = evalUnary(toks, p, b);
        if (toks[p].kind == TokKind::Symbol && toks[p].text == "^") {
            ++p;
            const double exp = evalPow(toks, p, b); // right-assoc
            return std::pow(base, exp);
        }
        return base;
    }

    double
    evalUnary(const std::vector<Token> &toks, std::size_t &p,
              const std::map<std::string, double> &b) const
    {
        if (toks[p].kind == TokKind::Symbol && toks[p].text == "-") {
            ++p;
            return -evalUnary(toks, p, b);
        }
        if (toks[p].kind == TokKind::Symbol && toks[p].text == "+") {
            ++p;
            return evalUnary(toks, p, b);
        }
        return evalAtom(toks, p, b);
    }

    double
    evalAtom(const std::vector<Token> &toks, std::size_t &p,
             const std::map<std::string, double> &b) const
    {
        const Token &t = toks[p];
        if (t.kind == TokKind::Real || t.kind == TokKind::Integer) {
            ++p;
            return std::stod(t.text);
        }
        if (t.kind == TokKind::Symbol && t.text == "(") {
            ++p;
            const double v = evalAddSub(toks, p, b);
            if (toks[p].kind != TokKind::Symbol || toks[p].text != ")")
                fatal("qasm: expected ')' in expression");
            ++p;
            return v;
        }
        if (t.kind == TokKind::Identifier) {
            ++p;
            if (t.text == "pi")
                return std::numbers::pi;
            auto it = b.find(t.text);
            if (it != b.end())
                return it->second;
            // function call?
            if (toks[p].kind == TokKind::Symbol && toks[p].text == "(") {
                ++p;
                const double arg = evalAddSub(toks, p, b);
                if (toks[p].kind != TokKind::Symbol ||
                    toks[p].text != ")")
                    fatal("qasm: expected ')' after function arg");
                ++p;
                if (t.text == "sin") return std::sin(arg);
                if (t.text == "cos") return std::cos(arg);
                if (t.text == "tan") return std::tan(arg);
                if (t.text == "exp") return std::exp(arg);
                if (t.text == "ln") return std::log(arg);
                if (t.text == "sqrt") return std::sqrt(arg);
                fatal("qasm: unknown function '" + t.text + "'");
            }
            fatal("qasm: unknown identifier '" + t.text +
                  "' in expression");
        }
        fatal("qasm: malformed expression");
    }

    /** Parse q, q[i]; returns the expanded list of global indices. */
    std::vector<int>
    parseQubitOperand()
    {
        const std::string reg = expectIdent();
        auto it = qregs_.find(reg);
        if (it == qregs_.end())
            error("unknown quantum register '" + reg + "'");
        const auto [base, size] = it->second;
        if (at(TokKind::Symbol, "[")) {
            take();
            const int idx = expectInt();
            expect(TokKind::Symbol, "]");
            if (idx < 0 || idx >= size)
                error("index " + std::to_string(idx) +
                      " out of range for register '" + reg + "'");
            return {base + idx};
        }
        std::vector<int> all(static_cast<std::size_t>(size));
        for (int i = 0; i < size; ++i)
            all[static_cast<std::size_t>(i)] = base + i;
        return all;
    }

    void
    parseGateCall()
    {
        const std::string name = take().text;
        std::vector<double> params;
        if (at(TokKind::Symbol, "(")) {
            take();
            if (!at(TokKind::Symbol, ")")) {
                params.push_back(evalExpr(captureExpr(), {}));
                while (at(TokKind::Symbol, ",")) {
                    take();
                    params.push_back(evalExpr(captureExpr(), {}));
                }
            }
            expect(TokKind::Symbol, ")");
        }
        std::vector<std::vector<int>> operands;
        operands.push_back(parseQubitOperand());
        while (at(TokKind::Symbol, ",")) {
            take();
            operands.push_back(parseQubitOperand());
        }
        expect(TokKind::Symbol, ";");

        // Broadcast register operands (all same length or length 1).
        std::size_t reps = 1;
        for (const auto &ops : operands)
            reps = std::max(reps, ops.size());
        for (const auto &ops : operands)
            if (ops.size() != 1 && ops.size() != reps)
                error("mismatched register sizes in gate call");
        for (std::size_t r = 0; r < reps; ++r) {
            std::vector<int> qubits;
            qubits.reserve(operands.size());
            for (const auto &ops : operands)
                qubits.push_back(ops.size() == 1 ? ops[0] : ops[r]);
            emitGate(name, params, qubits);
        }
    }

    void
    emitGate(const std::string &name, const std::vector<double> &params,
             const std::vector<int> &qubits)
    {
        Op op;
        if (opFromName(name, op)) {
            out_.emplace_back(op, qubits, params);
            return;
        }
        auto it = gateDefs_.find(name);
        if (it == gateDefs_.end())
            fatal("qasm: unknown gate '" + name + "'");
        const GateDef &def = it->second;
        if (def.params.size() != params.size() ||
            def.qubits.size() != qubits.size())
            fatal("qasm: arity mismatch calling gate '" + name + "'");
        std::map<std::string, double> bind;
        for (std::size_t i = 0; i < def.params.size(); ++i)
            bind[def.params[i]] = params[i];
        std::map<std::string, int> qbind;
        for (std::size_t i = 0; i < def.qubits.size(); ++i)
            qbind[def.qubits[i]] = qubits[i];
        for (const GateDef::BodyOp &body_op : def.body) {
            std::vector<double> sub_params;
            sub_params.reserve(body_op.arg_exprs.size());
            for (const auto &expr : body_op.arg_exprs)
                sub_params.push_back(evalExpr(expr, bind));
            std::vector<int> sub_qubits;
            sub_qubits.reserve(body_op.arg_qubits.size());
            for (const std::string &qn : body_op.arg_qubits) {
                auto qit = qbind.find(qn);
                if (qit == qbind.end())
                    fatal("qasm: unknown qubit '" + qn +
                          "' in body of gate '" + name + "'");
                sub_qubits.push_back(qit->second);
            }
            emitGate(body_op.name, sub_params, sub_qubits);
        }
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
    std::string name_;
    std::map<std::string, std::pair<int, int>> qregs_; // name -> base,size
    std::map<std::string, GateDef> gateDefs_;
    int totalQubits_ = 0;
    std::vector<Gate> out_;
};

} // namespace

Circuit
parse(const std::string &source, const std::string &name)
{
    Parser p(source, name);
    return p.run();
}

Circuit
parseFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("qasm: cannot open file '" + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string name = path;
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    const std::size_t dot = name.find_last_of('.');
    if (dot != std::string::npos)
        name = name.substr(0, dot);
    return parse(ss.str(), name);
}

} // namespace zac::qasm
