#include "circuit/generators.hpp"

#include <cmath>
#include <numbers>

#include "common/logging.hpp"

namespace zac::bench_circuits
{

namespace
{

constexpr double kPi = std::numbers::pi;

/** Deterministic secret with @p ones ones spread across @p bits bits. */
std::vector<bool>
spreadSecret(int bits, int ones)
{
    std::vector<bool> secret(static_cast<std::size_t>(bits), false);
    // Bresenham-style even spread so the circuit looks organic but is
    // fully deterministic.
    int acc = 0;
    for (int i = 0; i < bits; ++i) {
        acc += ones;
        if (acc >= bits) {
            acc -= bits;
            secret[static_cast<std::size_t>(i)] = true;
        }
    }
    return secret;
}

/** Standard 6-CX Toffoli decomposition appended to @p c. */
void
appendCcx(Circuit &c, int a, int b, int t)
{
    c.h(t);
    c.cx(b, t);
    c.tdg(t);
    c.cx(a, t);
    c.t(t);
    c.cx(b, t);
    c.tdg(t);
    c.cx(a, t);
    c.t(b);
    c.t(t);
    c.h(t);
    c.cx(a, b);
    c.t(a);
    c.tdg(b);
    c.cx(a, b);
}

/** Fredkin (controlled-SWAP) via CX + CCX + CX. */
void
appendCswap(Circuit &c, int ctrl, int a, int b)
{
    c.cx(b, a);
    appendCcx(c, ctrl, a, b);
    c.cx(b, a);
}

} // namespace

Circuit
bernsteinVazirani(int num_qubits, const std::vector<bool> &secret)
{
    if (static_cast<int>(secret.size()) != num_qubits - 1)
        fatal("bv: secret must have num_qubits-1 bits");
    Circuit c(num_qubits, "bv_n" + std::to_string(num_qubits));
    const int anc = num_qubits - 1;
    c.x(anc);
    c.h(anc);
    for (int i = 0; i < anc; ++i)
        c.h(i);
    for (int i = 0; i < anc; ++i)
        if (secret[static_cast<std::size_t>(i)])
            c.cx(i, anc);
    for (int i = 0; i < anc; ++i)
        c.h(i);
    c.h(anc);
    return c;
}

Circuit
ghz(int num_qubits)
{
    Circuit c(num_qubits, "ghz_n" + std::to_string(num_qubits));
    c.h(0);
    for (int i = 0; i + 1 < num_qubits; ++i)
        c.cx(i, i + 1);
    return c;
}

Circuit
cat(int num_qubits)
{
    Circuit c = ghz(num_qubits);
    c.setName("cat_n" + std::to_string(num_qubits));
    return c;
}

Circuit
ising(int num_qubits)
{
    Circuit c(num_qubits, "ising_n" + std::to_string(num_qubits));
    const double h_field = 2.0;
    const double jz = 1.0;
    const double dt = 0.1;
    // Transverse-field layer.
    for (int q = 0; q < num_qubits; ++q)
        c.rx(q, 2.0 * h_field * dt);
    // ZZ couplings: even bonds then odd bonds, each CX-RZ-CX.
    for (int parity = 0; parity < 2; ++parity) {
        for (int i = parity; i + 1 < num_qubits; i += 2) {
            c.cx(i, i + 1);
            c.rz(i + 1, 2.0 * jz * dt);
            c.cx(i, i + 1);
        }
    }
    // Closing field layer.
    for (int q = 0; q < num_qubits; ++q)
        c.rx(q, 2.0 * h_field * dt);
    return c;
}

Circuit
qft(int num_qubits)
{
    Circuit c(num_qubits, "qft_n" + std::to_string(num_qubits));
    for (int i = 0; i < num_qubits; ++i) {
        c.h(i);
        for (int j = i + 1; j < num_qubits; ++j)
            c.cp(j, i, kPi / std::pow(2.0, j - i));
    }
    return c;
}

Circuit
wstate(int num_qubits)
{
    Circuit c(num_qubits, "wstate_n" + std::to_string(num_qubits));
    const int n = num_qubits;
    c.x(n - 1);
    // F-block cascade: RY / CZ / RY rotations distribute the excitation.
    for (int i = n - 1; i > 0; --i) {
        const double theta =
            std::acos(std::sqrt(1.0 / static_cast<double>(i + 1)));
        c.ry(i - 1, -theta);
        c.cz(i, i - 1);
        c.ry(i - 1, theta);
    }
    // CX chain completes the W state.
    for (int i = 0; i + 1 < n; ++i)
        c.cx(i, i + 1);
    return c;
}

Circuit
swapTest(int num_qubits)
{
    if (num_qubits % 2 == 0)
        fatal("swap_test: qubit count must be odd (anc + two registers)");
    const int m = (num_qubits - 1) / 2;
    Circuit c(num_qubits, "swap_test_n" + std::to_string(num_qubits));
    const int anc = 0;
    c.h(anc);
    // Prepare |psi> on register A so the test is nontrivial.
    for (int i = 0; i < m; ++i)
        c.ry(1 + i, 0.3 * (i + 1));
    for (int i = 0; i < m; ++i)
        appendCswap(c, anc, 1 + i, 1 + m + i);
    c.h(anc);
    return c;
}

Circuit
knn(int num_qubits)
{
    if (num_qubits % 2 == 0)
        fatal("knn: qubit count must be odd (anc + two registers)");
    const int m = (num_qubits - 1) / 2;
    Circuit c(num_qubits, "knn_n" + std::to_string(num_qubits));
    const int anc = 0;
    // Encode the training / test feature vectors.
    for (int i = 0; i < m; ++i) {
        c.ry(1 + i, 0.7 + 0.1 * i);
        c.ry(1 + m + i, 0.4 + 0.1 * i);
    }
    c.h(anc);
    for (int i = 0; i < m; ++i)
        appendCswap(c, anc, 1 + i, 1 + m + i);
    c.h(anc);
    return c;
}

Circuit
multiply(int num_qubits)
{
    if (num_qubits < 13)
        fatal("multiply: needs at least 13 qubits");
    // 3-bit a, 2-bit b, 5-bit product, 3 carries = 13 qubits.
    Circuit c(num_qubits, "multiply_n" + std::to_string(num_qubits));
    const int a0 = 0, b0 = 3, p0 = 5, c0 = 10;
    // Load operands a=5 (101), b=3 (11).
    c.x(a0 + 0);
    c.x(a0 + 2);
    c.x(b0 + 0);
    c.x(b0 + 1);
    // Schoolbook partial products (six Toffolis) ...
    for (int j = 0; j < 2; ++j)
        for (int i = 0; i < 3; ++i)
            appendCcx(c, a0 + i, b0 + j, p0 + i + j);
    // ... plus a ripple-carry cleanup across the product columns.
    c.cx(p0 + 1, c0 + 0);
    c.cx(c0 + 0, p0 + 2);
    c.cx(p0 + 2, c0 + 1);
    c.cx(c0 + 1, p0 + 3);
    return c;
}

Circuit
seca(int num_qubits)
{
    if (num_qubits < 11)
        fatal("seca: needs at least 11 qubits");
    Circuit c(num_qubits, "seca_n" + std::to_string(num_qubits));
    // Two rounds of Shor [[9,1,3]] encode / decode with majority-vote
    // correction (qubit 9, 10 spare/flag qubits as in QASMBench).
    for (int round = 0; round < 2; ++round) {
        // Phase-flip encode.
        c.cx(0, 3);
        c.cx(0, 6);
        c.h(0);
        c.h(3);
        c.h(6);
        // Bit-flip encode within each block.
        for (int b : {0, 3, 6}) {
            c.cx(b, b + 1);
            c.cx(b, b + 2);
        }
        // Channel: a deterministic error for the round.
        if (round == 0)
            c.z(4);
        else
            c.x(7);
        // Bit-flip decode + majority vote.
        for (int b : {0, 3, 6}) {
            c.cx(b, b + 1);
            c.cx(b, b + 2);
            appendCcx(c, b + 2, b + 1, b);
        }
        c.h(0);
        c.h(3);
        c.h(6);
        c.cx(0, 3);
        c.cx(0, 6);
        appendCcx(c, 6, 3, 0);
    }
    return c;
}

const std::vector<BenchmarkRecord> &
paperBenchmarkRecords()
{
    static const std::vector<BenchmarkRecord> records = {
        {"bv_n14", 13, 28},
        {"bv_n19", 18, 38},
        {"bv_n30", 18, 38},
        {"bv_n70", 36, 107},
        {"cat_n22", 21, 43},
        {"cat_n35", 34, 69},
        {"ghz_n23", 22, 45},
        {"ghz_n40", 39, 79},
        {"ghz_n78", 77, 155},
        {"ising_n42", 82, 144},
        {"ising_n98", 194, 340},
        {"knn_n31", 105, 153},
        {"multiply_n13", 40, 53},
        {"qft_n18", 306, 324},
        {"seca_n11", 80, 100},
        {"swap_test_n25", 84, 123},
        {"wstate_n27", 52, 105},
    };
    return records;
}

Circuit
paperBenchmark(const std::string &name)
{
    if (name == "bv_n14")
        return bernsteinVazirani(14, spreadSecret(13, 13));
    if (name == "bv_n19")
        return bernsteinVazirani(19, spreadSecret(18, 18));
    if (name == "bv_n30")
        return bernsteinVazirani(30, spreadSecret(29, 18));
    if (name == "bv_n70")
        return bernsteinVazirani(70, spreadSecret(69, 36));
    if (name == "cat_n22")
        return cat(22);
    if (name == "cat_n35")
        return cat(35);
    if (name == "ghz_n23")
        return ghz(23);
    if (name == "ghz_n40")
        return ghz(40);
    if (name == "ghz_n78")
        return ghz(78);
    if (name == "ising_n42")
        return ising(42);
    if (name == "ising_n98")
        return ising(98);
    if (name == "knn_n31")
        return knn(31);
    if (name == "multiply_n13")
        return multiply(13);
    if (name == "qft_n18")
        return qft(18);
    if (name == "seca_n11")
        return seca(11);
    if (name == "swap_test_n25")
        return swapTest(25);
    if (name == "wstate_n27")
        return wstate(27);
    fatal("unknown paper benchmark '" + name + "'");
}

std::vector<Circuit>
allPaperBenchmarks()
{
    std::vector<Circuit> out;
    out.reserve(paperBenchmarkRecords().size());
    for (const BenchmarkRecord &rec : paperBenchmarkRecords())
        out.push_back(paperBenchmark(rec.name));
    return out;
}

} // namespace zac::bench_circuits
