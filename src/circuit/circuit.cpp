#include "circuit/circuit.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <sstream>

#include "common/hash.hpp"
#include "common/logging.hpp"

namespace zac
{

namespace
{

struct OpInfo
{
    Op op;
    const char *name;
    int arity;       // 0 = variadic (barrier)
    int params;
};

constexpr std::array<OpInfo, 33> kOpTable{{
    {Op::I, "id", 1, 0},
    {Op::X, "x", 1, 0},
    {Op::Y, "y", 1, 0},
    {Op::Z, "z", 1, 0},
    {Op::H, "h", 1, 0},
    {Op::S, "s", 1, 0},
    {Op::Sdg, "sdg", 1, 0},
    {Op::T, "t", 1, 0},
    {Op::Tdg, "tdg", 1, 0},
    {Op::SX, "sx", 1, 0},
    {Op::SXdg, "sxdg", 1, 0},
    {Op::RX, "rx", 1, 1},
    {Op::RY, "ry", 1, 1},
    {Op::RZ, "rz", 1, 1},
    {Op::P, "p", 1, 1},
    {Op::U1, "u1", 1, 1},
    {Op::U2, "u2", 1, 2},
    {Op::U3, "u3", 1, 3},
    {Op::CX, "cx", 2, 0},
    {Op::CY, "cy", 2, 0},
    {Op::CZ, "cz", 2, 0},
    {Op::CH, "ch", 2, 0},
    {Op::SWAP, "swap", 2, 0},
    {Op::CP, "cp", 2, 1},
    {Op::CU1, "cu1", 2, 1},
    {Op::CRX, "crx", 2, 1},
    {Op::CRY, "cry", 2, 1},
    {Op::CRZ, "crz", 2, 1},
    {Op::RZZ, "rzz", 2, 1},
    {Op::RXX, "rxx", 2, 1},
    {Op::CCX, "ccx", 3, 0},
    {Op::CSWAP, "cswap", 3, 0},
    {Op::Barrier, "barrier", 0, 0},
}};

const OpInfo &
info(Op op)
{
    for (const OpInfo &i : kOpTable)
        if (i.op == op)
            return i;
    // Measure / Reset are handled out of table.
    static OpInfo measure{Op::Measure, "measure", 1, 0};
    static OpInfo reset{Op::Reset, "reset", 1, 0};
    if (op == Op::Measure)
        return measure;
    if (op == Op::Reset)
        return reset;
    panic("unknown opcode");
}

} // namespace

const char *
opName(Op op)
{
    return info(op).name;
}

bool
opFromName(const std::string &name, Op &out)
{
    for (const OpInfo &i : kOpTable) {
        if (name == i.name) {
            out = i.op;
            return true;
        }
    }
    if (name == "measure") {
        out = Op::Measure;
        return true;
    }
    if (name == "reset") {
        out = Op::Reset;
        return true;
    }
    // qelib1 aliases
    if (name == "u") {
        out = Op::U3;
        return true;
    }
    if (name == "cnot") {
        out = Op::CX;
        return true;
    }
    if (name == "toffoli") {
        out = Op::CCX;
        return true;
    }
    return false;
}

int
opArity(Op op)
{
    return info(op).arity;
}

int
opParamCount(Op op)
{
    return info(op).params;
}

bool
opIs1Q(Op op)
{
    return op >= Op::I && op <= Op::U3;
}

bool
opIs2Q(Op op)
{
    return op >= Op::CX && op <= Op::RXX;
}

bool
opIs3Q(Op op)
{
    return op == Op::CCX || op == Op::CSWAP;
}

std::string
Gate::str() const
{
    std::ostringstream ss;
    ss << opName(op);
    if (!params.empty()) {
        ss << '(';
        for (std::size_t i = 0; i < params.size(); ++i) {
            if (i)
                ss << ',';
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.10g", params[i]);
            ss << buf;
        }
        ss << ')';
    }
    ss << ' ';
    for (std::size_t i = 0; i < qubits.size(); ++i) {
        if (i)
            ss << ',';
        ss << "q[" << qubits[i] << ']';
    }
    return ss.str();
}

Circuit::Circuit(int num_qubits, std::string name)
    : numQubits_(num_qubits), name_(std::move(name))
{
    if (num_qubits < 0)
        fatal("circuit: negative qubit count");
}

void
Circuit::add(Gate g)
{
    const int arity = opArity(g.op);
    if (arity != 0 && static_cast<int>(g.qubits.size()) != arity)
        fatal("circuit: " + std::string(opName(g.op)) + " expects " +
              std::to_string(arity) + " qubits, got " +
              std::to_string(g.qubits.size()));
    const int nparams = opParamCount(g.op);
    if (static_cast<int>(g.params.size()) != nparams)
        fatal("circuit: " + std::string(opName(g.op)) + " expects " +
              std::to_string(nparams) + " params, got " +
              std::to_string(g.params.size()));
    for (int q : g.qubits) {
        if (q < 0 || q >= numQubits_)
            fatal("circuit: qubit index " + std::to_string(q) +
                  " out of range [0," + std::to_string(numQubits_) + ")");
    }
    if (g.qubits.size() > 1) {
        for (std::size_t i = 0; i < g.qubits.size(); ++i)
            for (std::size_t j = i + 1; j < g.qubits.size(); ++j)
                if (g.qubits[i] == g.qubits[j])
                    fatal("circuit: duplicate qubit operand in " +
                          g.str());
    }
    gates_.push_back(std::move(g));
}

void
Circuit::add(Op op, std::vector<int> qubits, std::vector<double> ps)
{
    add(Gate(op, std::move(qubits), std::move(ps)));
}

int
Circuit::count1Q() const
{
    int n = 0;
    for (const Gate &g : gates_)
        if (g.is1Q())
            ++n;
    return n;
}

int
Circuit::count2Q() const
{
    int n = 0;
    for (const Gate &g : gates_)
        if (g.is2Q())
            ++n;
    return n;
}

int
Circuit::count3Q() const
{
    int n = 0;
    for (const Gate &g : gates_)
        if (g.is3Q())
            ++n;
    return n;
}

int
Circuit::depth() const
{
    std::vector<int> level(static_cast<std::size_t>(numQubits_), 0);
    int max_level = 0;
    for (const Gate &g : gates_) {
        if (!g.isUnitary())
            continue;
        int lv = 0;
        for (int q : g.qubits)
            lv = std::max(lv, level[static_cast<std::size_t>(q)]);
        ++lv;
        for (int q : g.qubits)
            level[static_cast<std::size_t>(q)] = lv;
        max_level = std::max(max_level, lv);
    }
    return max_level;
}

std::vector<std::pair<int, int>>
Circuit::interactionEdges() const
{
    std::vector<std::pair<int, int>> edges;
    for (const Gate &g : gates_)
        if (g.is2Q())
            edges.emplace_back(g.qubits[0], g.qubits[1]);
    return edges;
}

std::uint64_t
Circuit::contentHash() const
{
    Fnv1a h;
    h.u64(static_cast<std::uint64_t>(numQubits_));
    h.u64(gates_.size());
    for (const Gate &g : gates_) {
        h.u8(static_cast<std::uint8_t>(g.op));
        h.u64(g.qubits.size());
        for (int q : g.qubits)
            h.i64(q);
        h.u64(g.params.size());
        for (double p : g.params)
            h.f64(p);
    }
    return h.digest();
}

std::string
Circuit::toQasm() const
{
    std::ostringstream ss;
    ss << "OPENQASM 2.0;\n";
    ss << "include \"qelib1.inc\";\n";
    ss << "qreg q[" << numQubits_ << "];\n";
    ss << "creg c[" << numQubits_ << "];\n";
    for (const Gate &g : gates_) {
        if (g.op == Op::Barrier) {
            ss << "barrier q;\n";
            continue;
        }
        if (g.op == Op::Measure) {
            ss << "measure q[" << g.qubits[0] << "] -> c["
               << g.qubits[0] << "];\n";
            continue;
        }
        ss << opName(g.op);
        if (!g.params.empty()) {
            ss << '(';
            for (std::size_t i = 0; i < g.params.size(); ++i) {
                if (i)
                    ss << ',';
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.12g", g.params[i]);
                ss << buf;
            }
            ss << ')';
        }
        ss << ' ';
        for (std::size_t i = 0; i < g.qubits.size(); ++i) {
            if (i)
                ss << ',';
            ss << "q[" << g.qubits[i] << ']';
        }
        ss << ";\n";
    }
    return ss.str();
}

} // namespace zac
