/**
 * @file
 * Gate and opcode definitions for the circuit IR.
 *
 * The IR supports the standard OpenQASM 2.0 (qelib1) gate vocabulary so
 * QASMBench circuits parse directly; the transpile module lowers all of it
 * to the neutral-atom hardware set {CZ, U3}.
 */

#ifndef ZAC_CIRCUIT_GATE_HPP
#define ZAC_CIRCUIT_GATE_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace zac
{

/** Opcode for a circuit operation. */
enum class Op : std::uint8_t
{
    // 1-qubit gates
    I, X, Y, Z, H, S, Sdg, T, Tdg, SX, SXdg,
    RX, RY, RZ, P, U1, U2, U3,
    // 2-qubit gates
    CX, CY, CZ, CH, SWAP, CP, CU1, CRX, CRY, CRZ, RZZ, RXX,
    // 3-qubit gates
    CCX, CSWAP,
    // non-unitary / structural
    Barrier, Measure, Reset,
};

/** @return the lowercase OpenQASM name for @p op. */
const char *opName(Op op);

/** @return the opcode for a qelib1 gate name, or nullopt-like failure. */
bool opFromName(const std::string &name, Op &out);

/** Number of qubit operands the opcode requires (0 = variadic). */
int opArity(Op op);

/** Number of angle parameters the opcode requires. */
int opParamCount(Op op);

/** @return true for 1-qubit unitary opcodes. */
bool opIs1Q(Op op);

/** @return true for 2-qubit unitary opcodes. */
bool opIs2Q(Op op);

/** @return true for 3-qubit unitary opcodes. */
bool opIs3Q(Op op);

/**
 * One circuit operation: an opcode, its qubit operands (global indices)
 * and its real-valued parameters (angles in radians).
 */
struct Gate
{
    Op op = Op::I;
    std::vector<int> qubits;
    std::vector<double> params;

    Gate() = default;
    Gate(Op o, std::vector<int> qs, std::vector<double> ps = {})
        : op(o), qubits(std::move(qs)), params(std::move(ps)) {}

    bool is1Q() const { return opIs1Q(op); }
    bool is2Q() const { return opIs2Q(op); }
    bool is3Q() const { return opIs3Q(op); }
    bool isUnitary() const
    {
        return op != Op::Barrier && op != Op::Measure && op != Op::Reset;
    }

    /** Human-readable rendering, e.g. "cx q[0],q[3]". */
    std::string str() const;
};

} // namespace zac

#endif // ZAC_CIRCUIT_GATE_HPP
