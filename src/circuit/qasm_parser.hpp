/**
 * @file
 * OpenQASM 2.0 parser producing a flattened zac::Circuit.
 *
 * Supported: OPENQASM header, include (qelib1.inc is built in, other
 * includes are ignored), qreg/creg, all qelib1 gates, user gate
 * definitions (expanded inline), barrier, measure, reset, and full
 * parameter expressions (pi, + - * / ^, unary minus, parentheses,
 * sin/cos/tan/exp/ln/sqrt).
 *
 * Not supported (rejected with a clear error): opaque gates and `if`
 * statements, which do not occur in the QASMBench subset the paper uses.
 */

#ifndef ZAC_CIRCUIT_QASM_PARSER_HPP
#define ZAC_CIRCUIT_QASM_PARSER_HPP

#include <string>

#include "circuit/circuit.hpp"

namespace zac::qasm
{

/**
 * Parse OpenQASM 2.0 source into a circuit.
 *
 * Multiple quantum registers are flattened into a single dense qubit
 * index space in declaration order.
 *
 * @param source the program text.
 * @param name   the name to give the resulting circuit.
 */
Circuit parse(const std::string &source, const std::string &name = "");

/** Parse the OpenQASM 2.0 file at @p path. */
Circuit parseFile(const std::string &path);

} // namespace zac::qasm

#endif // ZAC_CIRCUIT_QASM_PARSER_HPP
