/**
 * @file
 * The quantum circuit container used across the compiler.
 */

#ifndef ZAC_CIRCUIT_CIRCUIT_HPP
#define ZAC_CIRCUIT_CIRCUIT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace zac
{

/**
 * An ordered list of gates over a fixed set of qubits.
 *
 * Qubits are dense integers [0, numQubits). The builder methods validate
 * operand indices and arity so malformed circuits fail at construction.
 */
class Circuit
{
  public:
    Circuit() = default;
    explicit Circuit(int num_qubits, std::string name = "");

    int numQubits() const { return numQubits_; }
    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    const std::vector<Gate> &gates() const { return gates_; }
    std::size_t size() const { return gates_.size(); }
    const Gate &operator[](std::size_t i) const { return gates_[i]; }

    /** Append a gate after validating operands. */
    void add(Gate g);
    void add(Op op, std::vector<int> qubits, std::vector<double> ps = {});

    // Convenience builders for common gates.
    void h(int q) { add(Op::H, {q}); }
    void x(int q) { add(Op::X, {q}); }
    void y(int q) { add(Op::Y, {q}); }
    void z(int q) { add(Op::Z, {q}); }
    void s(int q) { add(Op::S, {q}); }
    void sdg(int q) { add(Op::Sdg, {q}); }
    void t(int q) { add(Op::T, {q}); }
    void tdg(int q) { add(Op::Tdg, {q}); }
    void rx(int q, double a) { add(Op::RX, {q}, {a}); }
    void ry(int q, double a) { add(Op::RY, {q}, {a}); }
    void rz(int q, double a) { add(Op::RZ, {q}, {a}); }
    void u3(int q, double th, double ph, double la)
    {
        add(Op::U3, {q}, {th, ph, la});
    }
    void cx(int c, int t) { add(Op::CX, {c, t}); }
    void cz(int a, int b) { add(Op::CZ, {a, b}); }
    void cp(int a, int b, double th) { add(Op::CP, {a, b}, {th}); }
    void swap(int a, int b) { add(Op::SWAP, {a, b}); }
    void ccx(int a, int b, int t) { add(Op::CCX, {a, b, t}); }
    void cswap(int c, int a, int b) { add(Op::CSWAP, {c, a, b}); }
    void barrier() { add(Op::Barrier, {}); }
    void measure(int q) { add(Op::Measure, {q}); }

    /** Count of 1-qubit unitary gates. */
    int count1Q() const;
    /** Count of 2-qubit unitary gates. */
    int count2Q() const;
    /** Count of 3-qubit unitary gates. */
    int count3Q() const;

    /** Circuit depth counting unitary gates only (barriers ignored). */
    int depth() const;

    /**
     * The qubit-interaction multigraph as (q, q') pairs, one per 2Q gate.
     */
    std::vector<std::pair<int, int>> interactionEdges() const;

    /** Render as an OpenQASM 2.0 program. */
    std::string toQasm() const;

    /**
     * Order-stable 64-bit content hash over qubit count, gate sequence
     * (opcode, operands) and parameters (by canonicalized bit pattern).
     * The circuit name is deliberately excluded, so two identically
     * constructed circuits hash equally regardless of labeling. Used as
     * the circuit component of the compile-service cache key and for
     * batch-manifest deduplication.
     */
    std::uint64_t contentHash() const;

  private:
    int numQubits_ = 0;
    std::string name_;
    std::vector<Gate> gates_;
};

} // namespace zac

#endif // ZAC_CIRCUIT_CIRCUIT_HPP
