/**
 * @file
 * Synthetic scaling circuit families (ISSUE 10): seeded generators
 * parameterized from ~10 to thousands of qubits, used by the
 * workload-scaling sweep (bench/perf_scaling.cpp) to measure
 * qubit-count vs. compile-time curves far beyond the 17 paper
 * circuits. Every generator is a pure function of (family, num_qubits,
 * seed) — the portable zac::Rng guarantees identical circuits on every
 * platform — and every family has a closed-form gate-count formula so
 * tests can pin the construction.
 */

#ifndef ZAC_CIRCUIT_SCALING_HPP
#define ZAC_CIRCUIT_SCALING_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace zac::scaling
{

/** The synthetic scaling families of the workload sweep. */
enum class Family
{
    Ghz,   ///< H + CX chain; linear gate count, serial stages
    Ising, ///< one TFIM Trotter step; linear, highly parallel
    Qaoa,  ///< p=1 QAOA on a seeded random 3-regular graph; linear
    QftNn, ///< nearest-neighbour QFT (CP+SWAP cascade); quadratic
    Qv,    ///< Quantum Volume model circuit (seeded); quadratic
};

/** All families, in the sweep's canonical order. */
const std::vector<Family> &allFamilies();

/** Canonical short name, e.g. "qaoa3r" for Family::Qaoa. */
std::string familyName(Family family);

/** Inverse of familyName(). @throws zac::FatalError on unknown names. */
Family familyFromName(const std::string &name);

/**
 * Exact 2Q-gate count of generate(family, n, seed) for any seed.
 * Ghz: n-1. Ising: 2*(n-1). Qaoa: 3n (two CX per 3-regular edge).
 * QftNn: n*(n-1) (one CP + one SWAP per pair). Qv: 3*floor(n/2)*n
 * (three CX per SU(4) block, floor(n/2) blocks over n layers).
 */
std::int64_t expected2Q(Family family, int num_qubits);

/**
 * Exact 1Q-gate count of generate(family, n, seed) for any seed.
 * Ghz: 1. Ising: 2n + n-1. Qaoa: 2n + 3n/2. QftNn: n.
 * Qv: 6*floor(n/2)*n.
 */
std::int64_t expected1Q(Family family, int num_qubits);

/** Smallest supported qubit count of a family (Qaoa needs even n >= 6). */
int minQubits(Family family);

/**
 * Build one scaling circuit. The name encodes the full parameter
 * tuple, e.g. "qaoa3r_n128_s7".
 *
 * Families:
 *  - Ghz: H(0) then the CX chain (the paper's ghz family, unbounded);
 *  - Ising: one first-order Trotter step of the 1D TFIM (the paper's
 *    ising family, unbounded);
 *  - Qaoa: p=1 QAOA on a random 3-regular graph — the union of the
 *    n-cycle and a seeded perfect matching with no cycle-adjacent or
 *    duplicate pairs — with a CX-RZ-CX phase separator per edge and an
 *    RX mixer layer (gamma/beta fixed, graph seeded);
 *  - QftNn: the exact QFT in nearest-neighbour form: a CP+SWAP cascade
 *    walks each new qubit down the chain, so every 2Q gate acts on
 *    adjacent logical positions (no long-range CP as in the paper's
 *    qft family);
 *  - Qv: the Quantum Volume model: n layers, each pairing a seeded
 *    random permutation of the qubits and applying a randomized SU(4)
 *    block (3 CX + 6 1Q rotations) per pair.
 *
 * @throws zac::FatalError when num_qubits < minQubits(family), or for
 *         Qaoa when num_qubits is odd.
 */
Circuit generate(Family family, int num_qubits, std::uint64_t seed = 1);

/** generate() by family name (for CLI / manifest use). */
Circuit generate(const std::string &family_name, int num_qubits,
                 std::uint64_t seed = 1);

/**
 * The edge list of the seeded random 3-regular graph used by the Qaoa
 * family: the n-cycle plus a perfect matching drawn by rejection
 * sampling from @p seed (deterministic; falls back to the (i, i+n/2)
 * chord matching if 128 shuffles all collide, which for n >= 8 is
 * vanishingly rare). Exposed for tests: exactly 3n/2 edges, every
 * vertex with degree exactly 3, no self-loops or duplicates.
 */
std::vector<std::pair<int, int>> random3RegularEdges(int num_qubits,
                                                     std::uint64_t seed);

} // namespace zac::scaling

#endif // ZAC_CIRCUIT_SCALING_HPP
