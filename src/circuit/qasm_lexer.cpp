#include "circuit/qasm_lexer.hpp"

#include <cctype>

#include "common/logging.hpp"

namespace zac::qasm
{

std::vector<Token>
lex(const std::string &source)
{
    std::vector<Token> tokens;
    int line = 1;
    int col = 1;
    std::size_t i = 0;
    const std::size_t n = source.size();

    auto advance = [&](std::size_t count) {
        for (std::size_t k = 0; k < count; ++k) {
            if (source[i + k] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        i += count;
    };

    while (i < n) {
        const char c = source[i];
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance(1);
            continue;
        }
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            while (i < n && source[i] != '\n')
                advance(1);
            continue;
        }
        Token tok;
        tok.line = line;
        tok.col = col;
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t j = i;
            while (j < n &&
                   (std::isalnum(static_cast<unsigned char>(source[j])) ||
                    source[j] == '_'))
                ++j;
            tok.kind = TokKind::Identifier;
            tok.text = source.substr(i, j - i);
            advance(j - i);
        } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                   (c == '.' && i + 1 < n &&
                    std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
            std::size_t j = i;
            bool is_real = false;
            while (j < n &&
                   std::isdigit(static_cast<unsigned char>(source[j])))
                ++j;
            if (j < n && source[j] == '.') {
                is_real = true;
                ++j;
                while (j < n &&
                       std::isdigit(static_cast<unsigned char>(source[j])))
                    ++j;
            }
            if (j < n && (source[j] == 'e' || source[j] == 'E')) {
                is_real = true;
                ++j;
                if (j < n && (source[j] == '+' || source[j] == '-'))
                    ++j;
                while (j < n &&
                       std::isdigit(static_cast<unsigned char>(source[j])))
                    ++j;
            }
            tok.kind = is_real ? TokKind::Real : TokKind::Integer;
            tok.text = source.substr(i, j - i);
            advance(j - i);
        } else if (c == '"') {
            std::size_t j = i + 1;
            while (j < n && source[j] != '"')
                ++j;
            if (j >= n)
                fatal("qasm lex: unterminated string at line " +
                      std::to_string(line));
            tok.kind = TokKind::String;
            tok.text = source.substr(i + 1, j - i - 1);
            advance(j - i + 1);
        } else if (c == '-' && i + 1 < n && source[i + 1] == '>') {
            tok.kind = TokKind::Symbol;
            tok.text = "->";
            advance(2);
        } else if (c == '=' && i + 1 < n && source[i + 1] == '=') {
            tok.kind = TokKind::Symbol;
            tok.text = "==";
            advance(2);
        } else if (std::string(";,()[]{}+-*/^").find(c) !=
                   std::string::npos) {
            tok.kind = TokKind::Symbol;
            tok.text = std::string(1, c);
            advance(1);
        } else {
            fatal("qasm lex: unexpected character '" + std::string(1, c) +
                  "' at line " + std::to_string(line) + ", col " +
                  std::to_string(col));
        }
        tokens.push_back(std::move(tok));
    }

    Token end;
    end.kind = TokKind::End;
    end.line = line;
    end.col = col;
    tokens.push_back(end);
    return tokens;
}

} // namespace zac::qasm
