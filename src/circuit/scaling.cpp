#include "circuit/scaling.hpp"

#include <cmath>
#include <numbers>
#include <utility>

#include "circuit/generators.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"

namespace zac::scaling
{

namespace
{

constexpr double kPi = std::numbers::pi;

std::string
scalingName(Family family, int num_qubits, std::uint64_t seed)
{
    return familyName(family) + "_n" + std::to_string(num_qubits) +
           "_s" + std::to_string(seed);
}

/** Fisher–Yates shuffle of @p v with the portable Rng. */
void
shuffle(std::vector<int> &v, Rng &rng)
{
    for (std::size_t i = v.size(); i > 1; --i) {
        const std::size_t j =
            static_cast<std::size_t>(rng.nextBelow(i));
        std::swap(v[i - 1], v[j]);
    }
}

Circuit
qaoa3Regular(int n, std::uint64_t seed)
{
    Circuit c(n, scalingName(Family::Qaoa, n, seed));
    // Fixed p=1 angles; the sweep varies problem size, not parameters.
    const double gamma = 0.7;
    const double beta = 0.3;
    for (int q = 0; q < n; ++q)
        c.h(q);
    for (const auto &[a, b] : random3RegularEdges(n, seed)) {
        c.cx(a, b);
        c.rz(b, 2.0 * gamma);
        c.cx(a, b);
    }
    for (int q = 0; q < n; ++q)
        c.rx(q, 2.0 * beta);
    return c;
}

Circuit
qftNearestNeighbour(int n, std::uint64_t seed)
{
    Circuit c(n, scalingName(Family::QftNn, n, seed));
    // CP+SWAP cascade: before step j, wire w < j holds logical
    // L_{j-1-w} and wire j still holds L_j. The walk moves L_j from
    // wire j down to wire 0, phasing against each processed qubit on
    // the way (all CPs are diagonal, hence mutually commuting, so this
    // is an exact reordering of the textbook QFT); H(L_j) then fires
    // after every CP that controls on it. Every 2Q gate acts on
    // adjacent wires.
    c.h(0);
    for (int j = 1; j < n; ++j) {
        for (int w = j; w >= 1; --w) {
            // Wire w-1 holds L_{j-w}: angle pi / 2^(j - (j-w)).
            c.cp(w, w - 1, kPi / std::pow(2.0, w));
            c.swap(w, w - 1);
        }
        c.h(0);
    }
    return c;
}

Circuit
quantumVolume(int n, std::uint64_t seed)
{
    Circuit c(n, scalingName(Family::Qv, n, seed));
    Rng rng(seed * 0x9e3779b97f4a7c15ull + static_cast<unsigned>(n));
    std::vector<int> perm(static_cast<std::size_t>(n));
    const auto angle = [&rng] { return rng.nextDouble() * 2.0 * kPi; };
    for (int layer = 0; layer < n; ++layer) {
        for (int q = 0; q < n; ++q)
            perm[static_cast<std::size_t>(q)] = q;
        shuffle(perm, rng);
        for (int p = 0; p + 1 < n; p += 2) {
            const int a = perm[static_cast<std::size_t>(p)];
            const int b = perm[static_cast<std::size_t>(p + 1)];
            // Randomized SU(4) block in KAK form: 3 CX + 6 1Q gates.
            c.u3(a, angle(), angle(), angle());
            c.u3(b, angle(), angle(), angle());
            c.cx(a, b);
            c.rz(b, angle());
            c.ry(a, angle());
            c.cx(b, a);
            c.ry(a, angle());
            c.cx(a, b);
            c.u3(b, angle(), angle(), angle());
        }
    }
    return c;
}

} // namespace

const std::vector<Family> &
allFamilies()
{
    static const std::vector<Family> families = {
        Family::Ghz, Family::Ising, Family::Qaoa, Family::QftNn,
        Family::Qv,
    };
    return families;
}

std::string
familyName(Family family)
{
    switch (family) {
    case Family::Ghz:
        return "ghz";
    case Family::Ising:
        return "ising";
    case Family::Qaoa:
        return "qaoa3r";
    case Family::QftNn:
        return "qftnn";
    case Family::Qv:
        return "qv";
    }
    fatal("familyName: unknown family");
}

Family
familyFromName(const std::string &name)
{
    for (Family family : allFamilies())
        if (familyName(family) == name)
            return family;
    fatal("unknown scaling family '" + name +
          "' (known: ghz, ising, qaoa3r, qftnn, qv)");
}

std::int64_t
expected2Q(Family family, int num_qubits)
{
    const std::int64_t n = num_qubits;
    switch (family) {
    case Family::Ghz:
        return n - 1;
    case Family::Ising:
        return 2 * (n - 1);
    case Family::Qaoa:
        return 3 * n;
    case Family::QftNn:
        return n * (n - 1);
    case Family::Qv:
        return 3 * (n / 2) * n;
    }
    fatal("expected2Q: unknown family");
}

std::int64_t
expected1Q(Family family, int num_qubits)
{
    const std::int64_t n = num_qubits;
    switch (family) {
    case Family::Ghz:
        return 1;
    case Family::Ising:
        return 2 * n + (n - 1);
    case Family::Qaoa:
        return 2 * n + 3 * n / 2;
    case Family::QftNn:
        return n;
    case Family::Qv:
        return 6 * (n / 2) * n;
    }
    fatal("expected1Q: unknown family");
}

int
minQubits(Family family)
{
    switch (family) {
    case Family::Ghz:
    case Family::Ising:
    case Family::QftNn:
        return 2;
    case Family::Qaoa:
        return 6;
    case Family::Qv:
        return 4;
    }
    fatal("minQubits: unknown family");
}

Circuit
generate(Family family, int num_qubits, std::uint64_t seed)
{
    if (num_qubits < minQubits(family))
        fatal("scaling::generate: " + familyName(family) + " needs at "
              "least " + std::to_string(minQubits(family)) + " qubits");
    if (family == Family::Qaoa && num_qubits % 2 != 0)
        fatal("scaling::generate: qaoa3r needs an even qubit count "
              "(3-regular graphs have no odd-order instances)");
    switch (family) {
    case Family::Ghz: {
        Circuit c = bench_circuits::ghz(num_qubits);
        c.setName(scalingName(family, num_qubits, seed));
        return c;
    }
    case Family::Ising: {
        Circuit c = bench_circuits::ising(num_qubits);
        c.setName(scalingName(family, num_qubits, seed));
        return c;
    }
    case Family::Qaoa:
        return qaoa3Regular(num_qubits, seed);
    case Family::QftNn:
        return qftNearestNeighbour(num_qubits, seed);
    case Family::Qv:
        return quantumVolume(num_qubits, seed);
    }
    fatal("scaling::generate: unknown family");
}

Circuit
generate(const std::string &family_name, int num_qubits,
         std::uint64_t seed)
{
    return generate(familyFromName(family_name), num_qubits, seed);
}

std::vector<std::pair<int, int>>
random3RegularEdges(int n, std::uint64_t seed)
{
    if (n < 6 || n % 2 != 0)
        fatal("random3RegularEdges: need an even qubit count >= 6");
    std::vector<std::pair<int, int>> edges;
    edges.reserve(static_cast<std::size_t>(3 * n / 2));
    // The n-cycle contributes degree 2 everywhere.
    for (int i = 0; i < n; ++i)
        edges.emplace_back(i, (i + 1) % n);
    // A perfect matching avoiding cycle edges contributes the third
    // degree: shuffle, pair consecutively, reject on any pair adjacent
    // in the cycle (the only way a duplicate edge can arise).
    Rng rng(seed);
    std::vector<int> perm(static_cast<std::size_t>(n));
    for (int attempt = 0; attempt < 128; ++attempt) {
        for (int i = 0; i < n; ++i)
            perm[static_cast<std::size_t>(i)] = i;
        shuffle(perm, rng);
        bool ok = true;
        for (int p = 0; p < n && ok; p += 2) {
            const int d = std::abs(perm[static_cast<std::size_t>(p)] -
                                   perm[static_cast<std::size_t>(p + 1)]);
            ok = d != 1 && d != n - 1;
        }
        if (!ok)
            continue;
        for (int p = 0; p < n; p += 2)
            edges.emplace_back(perm[static_cast<std::size_t>(p)],
                               perm[static_cast<std::size_t>(p + 1)]);
        return edges;
    }
    // Deterministic fallback (probability ~ (1/3)^128 for n >= 8): the
    // half-turn chord matching, never cycle-adjacent for n >= 6.
    for (int i = 0; i < n / 2; ++i)
        edges.emplace_back(i, i + n / 2);
    return edges;
}

} // namespace zac::scaling
