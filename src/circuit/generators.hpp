/**
 * @file
 * Programmatic generators for the paper's benchmark circuits.
 *
 * The paper evaluates on 17 circuits from QASMBench (Li et al., 2023).
 * Those .qasm files are not redistributable here, so each family is
 * generated from its published construction, sized to the qubit counts
 * (and, as closely as the construction allows, the 2Q/1Q gate counts)
 * reported in the paper's Fig. 8. Measured counts for every circuit are
 * recorded in EXPERIMENTS.md.
 */

#ifndef ZAC_CIRCUIT_GENERATORS_HPP
#define ZAC_CIRCUIT_GENERATORS_HPP

#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace zac::bench_circuits
{

/**
 * Bernstein–Vazirani with an explicit secret string.
 * Qubits: data bits [0, n-2], ancilla n-1.
 */
Circuit bernsteinVazirani(int num_qubits, const std::vector<bool> &secret);

/** GHZ state: H then a CX chain. */
Circuit ghz(int num_qubits);

/** Cat state (same construction as GHZ in QASMBench). */
Circuit cat(int num_qubits);

/**
 * One first-order Trotter step of a 1D transverse-field Ising model:
 * RX/RZ layers and a ZZ interaction (CX-RZ-CX) on every neighbour pair.
 * Highly parallel: ~n/2 simultaneous 2Q gates.
 */
Circuit ising(int num_qubits);

/** Quantum Fourier transform (no terminal swaps, as in QASMBench). */
Circuit qft(int num_qubits);

/** W state via the RY/CZ/RY F-block cascade plus a CX chain. */
Circuit wstate(int num_qubits);

/**
 * SWAP test between two (n-1)/2-qubit registers with one ancilla.
 * Uses the CX+CCX+CX Fredkin decomposition.
 */
Circuit swapTest(int num_qubits);

/** Quantum k-nearest-neighbour kernel (SWAP-test based, as QASMBench). */
Circuit knn(int num_qubits);

/** Small schoolbook multiplier (CCX partial products + CX adder). */
Circuit multiply(int num_qubits);

/** Shor [[9,1,3]] error-correction encode/decode cycles ("seca"). */
Circuit seca(int num_qubits);

/** The paper's published (2Q, 1Q) gate counts after preprocessing. */
struct BenchmarkRecord
{
    std::string name;   ///< e.g. "bv_n14"
    int paper_2q;       ///< 2Q count reported in Fig. 8
    int paper_1q;       ///< 1Q count reported in Fig. 8
};

/** Names + published gate counts for the 17 evaluation circuits. */
const std::vector<BenchmarkRecord> &paperBenchmarkRecords();

/**
 * Build one of the paper's 17 benchmarks by name (e.g. "ghz_n40").
 * @throws zac::FatalError on an unknown name.
 */
Circuit paperBenchmark(const std::string &name);

/** Build all 17 paper benchmarks in Fig. 8 order. */
std::vector<Circuit> allPaperBenchmarks();

} // namespace zac::bench_circuits

#endif // ZAC_CIRCUIT_GENERATORS_HPP
