#include "common/logging.hpp"

#include <atomic>
#include <cstdio>

namespace zac
{

namespace
{
std::atomic<bool> verbose_flag{false};
} // namespace

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (verbose_flag.load(std::memory_order_relaxed))
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setVerbose(bool on)
{
    verbose_flag.store(on, std::memory_order_relaxed);
}

bool
verbose()
{
    return verbose_flag.load(std::memory_order_relaxed);
}

} // namespace zac
