/**
 * @file
 * Minimal logging and error-reporting helpers.
 *
 * Follows the gem5 fatal/panic distinction:
 *  - fatal():  user error (bad input, invalid configuration); throws
 *              zac::FatalError so callers and tests can catch it.
 *  - panic():  internal invariant violation (a library bug); also throws,
 *              as aborting inside a library is hostile to embedders.
 */

#ifndef ZAC_COMMON_LOGGING_HPP
#define ZAC_COMMON_LOGGING_HPP

#include <stdexcept>
#include <string>

namespace zac
{

/** Exception thrown by fatal(): the condition is the caller's fault. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Exception thrown by panic(): the condition is a library bug. */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

/** Report an unrecoverable user error. */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal invariant violation. */
[[noreturn]] void panic(const std::string &msg);

/** Emit a warning to stderr (never throws). */
void warn(const std::string &msg);

/** Emit an informational message to stderr when verbose logging is on. */
void inform(const std::string &msg);

/** Globally enable/disable inform() output (default: off). */
void setVerbose(bool on);

/** @return whether inform() output is enabled. */
bool verbose();

} // namespace zac

#endif // ZAC_COMMON_LOGGING_HPP
