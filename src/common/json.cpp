#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"

namespace zac::json
{

namespace
{

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::Null: return "null";
      case Kind::Bool: return "bool";
      case Kind::Number: return "number";
      case Kind::String: return "string";
      case Kind::Array: return "array";
      case Kind::Object: return "object";
    }
    return "?";
}

[[noreturn]] void
kindMismatch(Kind want, Kind got)
{
    fatal(std::string("json: expected ") + kindName(want) + ", got " +
          kindName(got));
}

} // namespace

bool
Value::asBool() const
{
    if (kind_ != Kind::Bool)
        kindMismatch(Kind::Bool, kind_);
    return bool_;
}

double
Value::asDouble() const
{
    if (kind_ != Kind::Number)
        kindMismatch(Kind::Number, kind_);
    return num_;
}

std::int64_t
Value::asInt() const
{
    const double d = asDouble();
    const double r = std::nearbyint(d);
    if (std::abs(d - r) > 1e-9)
        fatal("json: number " + std::to_string(d) + " is not integral");
    return static_cast<std::int64_t>(r);
}

const std::string &
Value::asString() const
{
    if (kind_ != Kind::String)
        kindMismatch(Kind::String, kind_);
    return str_;
}

const Array &
Value::asArray() const
{
    if (kind_ != Kind::Array)
        kindMismatch(Kind::Array, kind_);
    return arr_;
}

Array &
Value::asArray()
{
    if (kind_ != Kind::Array)
        kindMismatch(Kind::Array, kind_);
    return arr_;
}

const Object &
Value::asObject() const
{
    if (kind_ != Kind::Object)
        kindMismatch(Kind::Object, kind_);
    return obj_;
}

Object &
Value::asObject()
{
    if (kind_ != Kind::Object)
        kindMismatch(Kind::Object, kind_);
    return obj_;
}

const Value &
Value::at(const std::string &key) const
{
    const Object &o = asObject();
    auto it = o.find(key);
    if (it == o.end())
        fatal("json: missing key '" + key + "'");
    return it->second;
}

bool
Value::contains(const std::string &key) const
{
    return kind_ == Kind::Object && obj_.count(key) > 0;
}

double
Value::numberOr(const std::string &key, double fallback) const
{
    if (!contains(key))
        return fallback;
    return at(key).asDouble();
}

const Value &
Value::at(std::size_t index) const
{
    const Array &a = asArray();
    if (index >= a.size())
        fatal("json: array index " + std::to_string(index) +
              " out of range (size " + std::to_string(a.size()) + ")");
    return a[index];
}

std::size_t
Value::size() const
{
    if (kind_ == Kind::Array)
        return arr_.size();
    if (kind_ == Kind::Object)
        return obj_.size();
    kindMismatch(Kind::Array, kind_);
}

namespace
{

void
dumpString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
dumpNumber(std::string &out, double d)
{
    if (std::nearbyint(d) == d && std::abs(d) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        out += buf;
    } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        out += buf;
    }
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

} // namespace

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        dumpNumber(out, num_);
        break;
      case Kind::String:
        dumpString(out, str_);
        break;
      case Kind::Array: {
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        bool first = true;
        for (const Value &v : arr_) {
            if (!first)
                out += indent > 0 ? "," : ",";
            first = false;
            newlineIndent(out, indent, depth + 1);
            v.dumpTo(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += ']';
        break;
      }
      case Kind::Object: {
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        bool first = true;
        for (const auto &[key, v] : obj_) {
            if (!first)
                out += ",";
            first = false;
            newlineIndent(out, indent, depth + 1);
            dumpString(out, key);
            out += indent > 0 ? ": " : ":";
            v.dumpTo(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace
{

/** Recursive-descent JSON parser with line/column diagnostics. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parseDocument()
    {
        skipWs();
        Value v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            error("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    error(const std::string &msg) const
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        fatal("json parse error at line " + std::to_string(line) +
              ", col " + std::to_string(col) + ": " + msg);
    }

    bool atEnd() const { return pos_ >= text_.size(); }

    char
    peek() const
    {
        if (atEnd())
            error("unexpected end of input");
        return text_[pos_];
    }

    char get() { char c = peek(); ++pos_; return c; }

    void
    skipWs()
    {
        while (!atEnd()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    void
    expect(char c)
    {
        if (peek() != c)
            error(std::string("expected '") + c + "', got '" + peek() +
                  "'");
        ++pos_;
    }

    void
    expectKeyword(const char *kw)
    {
        for (const char *p = kw; *p; ++p) {
            if (atEnd() || text_[pos_] != *p)
                error(std::string("invalid literal, expected '") + kw +
                      "'");
            ++pos_;
        }
    }

    Value
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Value(parseString());
          case 't': expectKeyword("true"); return Value(true);
          case 'f': expectKeyword("false"); return Value(false);
          case 'n': expectKeyword("null"); return Value(nullptr);
          default: return parseNumber();
        }
    }

    Value
    parseObject()
    {
        expect('{');
        Object obj;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return Value(std::move(obj));
        }
        while (true) {
            skipWs();
            if (peek() != '"')
                error("expected string key");
            std::string key = parseString();
            skipWs();
            expect(':');
            skipWs();
            obj[std::move(key)] = parseValue();
            skipWs();
            char c = get();
            if (c == '}')
                break;
            if (c != ',')
                error("expected ',' or '}' in object");
        }
        return Value(std::move(obj));
    }

    Value
    parseArray()
    {
        expect('[');
        Array arr;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return Value(std::move(arr));
        }
        while (true) {
            skipWs();
            arr.push_back(parseValue());
            skipWs();
            char c = get();
            if (c == ']')
                break;
            if (c != ',')
                error("expected ',' or ']' in array");
        }
        return Value(std::move(arr));
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            char c = get();
            if (c == '"')
                break;
            if (c == '\\') {
                char e = get();
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = get();
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code += static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code += static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code += static_cast<unsigned>(h - 'A' + 10);
                        else
                            error("invalid \\u escape");
                    }
                    // UTF-8 encode (BMP only).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xc0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default:
                    error("invalid escape character");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                error("raw control character in string");
            } else {
                out += c;
            }
        }
        return out;
    }

    Value
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
            error("invalid number");
        while (!atEnd() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (!atEnd() && text_[pos_] == '.') {
            ++pos_;
            if (atEnd() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                error("digit required after decimal point");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (!atEnd() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (!atEnd() && (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (atEnd() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                error("digit required in exponent");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        return Value(std::stod(text_.substr(start, pos_ - start)));
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Value
parse(const std::string &text)
{
    Parser p(text);
    return p.parseDocument();
}

Value
parseFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("json: cannot open file '" + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse(ss.str());
}

void
writeFile(const std::string &path, const Value &v)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("json: cannot write file '" + path + "'");
    out << v.dump(2) << '\n';
}

} // namespace zac::json
