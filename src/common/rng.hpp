/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component of the library (simulated annealing, circuit
 * generators, property tests) takes an explicit Rng so runs are exactly
 * reproducible from a seed.
 */

#ifndef ZAC_COMMON_RNG_HPP
#define ZAC_COMMON_RNG_HPP

#include <cstdint>
#include <limits>

namespace zac
{

/** The SplitMix64 increment (golden-ratio gamma). */
inline constexpr std::uint64_t kSplitMix64Gamma =
    0x9e3779b97f4a7c15ull;

/**
 * The SplitMix64 output finalizer: the mixing applied to each
 * gamma-advanced state word. Shared by Rng seeding and by derived-seed
 * schemes (e.g. the multi-seed SA streams) so the constants live in
 * one place.
 */
inline std::uint64_t
splitMix64Mix(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Small, fast, deterministic PRNG (xoshiro256**).
 *
 * We intentionally avoid std::mt19937 plus distribution objects because
 * libstdc++ distributions are not portable across versions; this generator
 * produces identical streams everywhere.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += kSplitMix64Gamma;
            word = splitMix64Mix(x);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless method is overkill here; simple
        // modulo bias is negligible for our bounds (< 2^32).
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int
    nextInt(int lo, int hi)
    {
        return lo + static_cast<int>(nextBelow(
            static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool
    nextBool(double p = 0.5)
    {
        return nextDouble() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace zac

#endif // ZAC_COMMON_RNG_HPP
