/**
 * @file
 * FNV-1a content hashing used for cache keys and fingerprints.
 *
 * The compile-service cache keys results by (circuit content hash,
 * architecture fingerprint, options digest); all three are built on this
 * hasher so the key derivation is one deterministic, dependency-free
 * algorithm. 64-bit FNV-1a is not cryptographic — collisions are
 * possible in principle — but at the cache sizes involved (thousands of
 * entries) the collision probability is negligible, and a collision can
 * only cause a stale-but-valid compile result, never memory unsafety.
 */

#ifndef ZAC_COMMON_HASH_HPP
#define ZAC_COMMON_HASH_HPP

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace zac
{

/**
 * Incremental 64-bit FNV-1a hasher.
 *
 * Every ingest method feeds a fixed-width encoding, so the digest is
 * identical across platforms (no padding bytes, no size_t width
 * dependence). Streams of variable-length fields must be length-prefixed
 * by the caller (see Circuit::contentHash) to keep the encoding
 * prefix-free.
 */
class Fnv1a
{
  public:
    static constexpr std::uint64_t kOffset = 1469598103934665603ull;
    static constexpr std::uint64_t kPrime = 1099511628211ull;

    /** Ingest raw bytes. */
    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h_ ^= p[i];
            h_ *= kPrime;
        }
    }

    /** Ingest one unsigned 64-bit value (little-endian byte order). */
    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= static_cast<unsigned char>(v >> (8 * i));
            h_ *= kPrime;
        }
    }

    /** Ingest one signed 64-bit value. */
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    /** Ingest one 32-bit value. */
    void u32(std::uint32_t v) { u64(v); }

    /** Ingest one byte-sized tag (e.g. an enum discriminator). */
    void u8(std::uint8_t v)
    {
        h_ ^= v;
        h_ *= kPrime;
    }

    /**
     * Ingest one double by bit pattern. -0.0 is canonicalized to +0.0
     * so numerically-equal parameter lists hash equally; NaNs keep
     * their payload (two NaN-parameterized circuits may differ, which
     * only costs a cache miss).
     */
    void
    f64(double d)
    {
        if (d == 0.0)
            d = 0.0; // collapse -0.0
        u64(std::bit_cast<std::uint64_t>(d));
    }

    /** Ingest a length-prefixed string. */
    void
    str(std::string_view s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    /** The current digest. */
    std::uint64_t digest() const { return h_; }

  private:
    std::uint64_t h_ = kOffset;
};

/** One-shot convenience: FNV-1a over a byte string. */
inline std::uint64_t
fnv1a(std::string_view s)
{
    Fnv1a h;
    h.bytes(s.data(), s.size());
    return h.digest();
}

/**
 * Mix two 64-bit hashes into one (order-sensitive). Used to fold the
 * three cache-key components into shard/bucket indices.
 */
inline std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    Fnv1a h;
    h.u64(a);
    h.u64(b);
    return h.digest();
}

} // namespace zac

#endif // ZAC_COMMON_HASH_HPP
