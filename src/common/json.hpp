/**
 * @file
 * A small self-contained JSON DOM: parser, writer, and value type.
 *
 * Used for the zoned-architecture specification files (paper Fig. 20) and
 * for ZAIR program serialization (paper Fig. 17/19). Supports the full
 * JSON grammar except \u surrogate pairs beyond the BMP; numbers are
 * stored as double (integers up to 2^53 round-trip exactly, which covers
 * every quantity in this domain).
 */

#ifndef ZAC_COMMON_JSON_HPP
#define ZAC_COMMON_JSON_HPP

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace zac::json
{

class Value;

using Array = std::vector<Value>;
/// std::map keeps keys ordered, giving deterministic serialization.
using Object = std::map<std::string, Value>;

/** Discriminator for the JSON value kinds. */
enum class Kind { Null, Bool, Number, String, Array, Object };

/**
 * A JSON value (tagged union over the six JSON kinds).
 *
 * Accessors are checked: asX() throws zac::FatalError on a kind mismatch
 * so malformed architecture files fail loudly rather than silently.
 */
class Value
{
  public:
    Value() : kind_(Kind::Null) {}
    Value(std::nullptr_t) : kind_(Kind::Null) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(int v) : kind_(Kind::Number), num_(v) {}
    Value(std::int64_t v)
        : kind_(Kind::Number), num_(static_cast<double>(v)) {}
    Value(std::size_t v)
        : kind_(Kind::Number), num_(static_cast<double>(v)) {}
    Value(double v) : kind_(Kind::Number), num_(v) {}
    Value(const char *s) : kind_(Kind::String), str_(s) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Value(Array a) : kind_(Kind::Array), arr_(std::move(a)) {}
    Value(Object o) : kind_(Kind::Object), obj_(std::move(o)) {}

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const;
    double asDouble() const;
    /** Number accessor that checks the value is (close to) integral. */
    std::int64_t asInt() const;
    const std::string &asString() const;
    const Array &asArray() const;
    Array &asArray();
    const Object &asObject() const;
    Object &asObject();

    /** Object member lookup; throws if absent or if not an object. */
    const Value &at(const std::string &key) const;
    /** @return whether this is an object containing @p key. */
    bool contains(const std::string &key) const;
    /** Object member lookup with a default for absent keys. */
    double numberOr(const std::string &key, double fallback) const;

    /** Array element access; throws on out-of-range. */
    const Value &at(std::size_t index) const;
    std::size_t size() const;

    /** Serialize; @p indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    Array arr_;
    Object obj_;
};

/**
 * Parse a JSON document.
 * @param text the complete document.
 * @return the root value.
 * @throws zac::FatalError with a line/column diagnostic on syntax errors.
 */
Value parse(const std::string &text);

/** Parse the JSON document stored in the file at @p path. */
Value parseFile(const std::string &path);

/** Write @p v to the file at @p path, pretty-printed. */
void writeFile(const std::string &path, const Value &v);

} // namespace zac::json

#endif // ZAC_COMMON_JSON_HPP
