/**
 * @file
 * Basic 2D geometry and physical unit conventions shared by the whole
 * library.
 *
 * Conventions (documented in DESIGN.md):
 *  - distances are in micrometres (um)
 *  - times are in microseconds (us)
 *  - AOD movement follows the constant-jerk profile reported by
 *    Bluvstein et al. [Nature 604, 451 (2022)]: d / t^2 = 2750 m/s^2,
 *    i.e. t_us = sqrt(d_um / 2.75e-3).
 */

#ifndef ZAC_COMMON_GEOMETRY_HPP
#define ZAC_COMMON_GEOMETRY_HPP

#include <cmath>

namespace zac
{

/** Effective AOD movement acceleration in um/us^2 (2750 m/s^2). */
inline constexpr double kMoveAccelUmPerUs2 = 2.75e-3;

/** A point (or displacement) in the plane, in micrometres. */
struct Point
{
    double x = 0.0;
    double y = 0.0;

    friend Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
    friend Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
    friend bool operator==(Point a, Point b) { return a.x == b.x && a.y == b.y; }
};

/** Euclidean distance between two points in um. */
inline double
distance(Point a, Point b)
{
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return std::sqrt(dx * dx + dy * dy);
}

/**
 * Duration of an AOD move covering @p dist_um micrometres, in us.
 *
 * Uses the square-root law t = sqrt(d / a). The paper's worked ZAIR
 * example (appendix H) moves 33.5 um in 110.4 us, which this reproduces.
 */
inline double
moveDurationUs(double dist_um)
{
    if (dist_um <= 0.0)
        return 0.0;
    return std::sqrt(dist_um / kMoveAccelUmPerUs2);
}

/**
 * Movement-cost kernel used throughout placement: the square root of the
 * distance, which is proportional to the movement duration (Eq. 1).
 */
inline double
sqrtDistance(Point a, Point b)
{
    return std::sqrt(distance(a, b));
}

} // namespace zac

#endif // ZAC_COMMON_GEOMETRY_HPP
