#include "net/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hpp"
#include "service/manifest.hpp"
#include "service/protocol.hpp"

namespace zac::net
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsBetween(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

const char *
reasonPhrase(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 411: return "Length Required";
      case 413: return "Content Too Large";
      case 414: return "URI Too Long";
      case 431: return "Request Header Fields Too Large";
      case 501: return "Not Implemented";
      case 503: return "Service Unavailable";
      case 505: return "HTTP Version Not Supported";
      default: return "Error";
    }
}

std::optional<std::size_t>
laneFromName(const std::string &name)
{
    if (name.empty() || name == "interactive")
        return kLaneInteractive;
    if (name == "batch")
        return kLaneBatch;
    return std::nullopt;
}

bool
isBlankLine(const std::string &line)
{
    return std::all_of(line.begin(), line.end(), [](char c) {
        return c == ' ' || c == '\t';
    });
}

} // namespace

CompileServer::CompileServer(std::vector<service::CompileTarget> targets,
                             ServerConfig config)
    : config_(std::move(config)),
      lanes_({config_.interactive_weight, config_.batch_weight})
{
    target_names_.reserve(targets.size());
    for (const service::CompileTarget &t : targets)
        target_names_.push_back(t.name);
    service_ = std::make_unique<service::CompileService>(
        std::move(targets), config_.service,
        [this](const service::JobRecord &r) { routeRecord(r); });
}

CompileServer::~CompileServer()
{
    // run() must have returned (or never started) by now; this only
    // cleans up a server that was constructed but not driven.
    lanes_.close();
    if (admitter_.joinable())
        admitter_.join();
    service_->shutdown();
}

std::uint16_t
CompileServer::listen()
{
    listener_ = tcpListen(config_.host, config_.port, config_.backlog);
    port_ = localPort(listener_.get());
    return port_;
}

void
CompileServer::requestDrain() noexcept
{
    // Only async-signal-safe operations: a relaxed-ish atomic store
    // and a pipe write.
    drain_requested_.store(true, std::memory_order_release);
    wake_.notify();
}

bool
CompileServer::run()
{
    if (!listener_.valid())
        fatal("CompileServer::run: call listen() first");
    admitter_ = std::thread([this] { admitterLoop(); });
    eventLoop();
    if (admitter_.joinable())
        admitter_.join();
    return drained_clean_;
}

NetStats
CompileServer::netStats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    NetStats s = stats_;
    s.active_connections = conns_.size();
    return s;
}

// ---------------------------------------------------------------------------
// Admitter thread: lanes -> bounded service queue -> id/conn binding.

void
CompileServer::admitterLoop()
{
    while (std::optional<PendingSubmission> next = lanes_.pop()) {
        PendingSubmission item = std::move(*next);
        std::uint64_t job_id = 0;
        bool submitted = false;
        std::string submit_error;
        try {
            // Blocks while the bounded service queue is full — this is
            // the compile-side backpressure; the lanes upstream keep
            // absorbing and re-ordering.
            job_id = service_->submit(std::move(item.sub));
            submitted = true;
        } catch (const FatalError &e) {
            submit_error = e.what();
        }

        std::lock_guard<std::mutex> lock(mu_);
        auto cit = conns_.find(item.conn_id);
        if (!submitted) {
            // Defensive: submit() only throws after shutdown, which
            // the admitter itself sequences after draining the lanes.
            if (cit != conns_.end()) {
                Connection &c = *cit->second;
                if (c.pending > 0)
                    --c.pending;
                appendLineError(c, service::JobStatus::Overloaded,
                                "submission refused: " + submit_error);
                maybeFinish(c);
                wake_.notify();
            }
            continue;
        }

        auto oit = orphans_.find(job_id);
        if (cit == conns_.end()) {
            // The connection died between lane pop and here.
            if (oit != orphans_.end())
                orphans_.erase(oit);
            else {
                discarded_jobs_.insert(job_id);
                service_->cancel(job_id);
            }
            continue;
        }
        Connection &c = *cit->second;
        if (oit != orphans_.end()) {
            // The terminal record beat the id->connection binding
            // (cache hit or overloaded rejection delivered inside
            // submit()): route the parked bytes now.
            c.outbuf += oit->second;
            orphans_.erase(oit);
            if (c.pending > 0)
                --c.pending;
            ++stats_.records_streamed;
            maybeFinish(c);
            wake_.notify();
        } else {
            job_conn_[job_id] = c.id;
            c.live_jobs.insert(job_id);
        }
    }

    // Lanes closed and fully drained: every admitted job is in the
    // service. Finish them (flushing the cache snapshot) and let the
    // event loop know it only has response buffers left to flush.
    drained_clean_ =
        service_->drainAndStop(config_.drain_deadline_seconds);
    service_drained_.store(true, std::memory_order_release);
    wake_.notify();
}

// ---------------------------------------------------------------------------
// Result sink (worker threads, or the submitting thread for
// overloaded rejections).

void
CompileServer::routeRecord(const service::JobRecord &record)
{
    std::ostringstream os;
    const std::string &target_name =
        record.target >= 0 &&
                record.target < static_cast<int>(target_names_.size())
            ? target_names_[record.target]
            : target_names_.front();
    service::writeJobRecordJsonl(os, record, target_name,
                                 config_.include_zair);
    std::string bytes = std::move(os).str();

    std::lock_guard<std::mutex> lock(mu_);
    auto jit = job_conn_.find(record.job_id);
    if (jit == job_conn_.end()) {
        if (discarded_jobs_.erase(record.job_id) > 0)
            return; // connection died; record dropped
        orphans_.emplace(record.job_id, std::move(bytes));
        return;
    }
    const std::uint64_t conn_id = jit->second;
    job_conn_.erase(jit);
    auto cit = conns_.find(conn_id);
    if (cit == conns_.end())
        return; // closeConnection already cleaned up
    Connection &c = *cit->second;
    c.live_jobs.erase(record.job_id);
    if (c.pending > 0)
        --c.pending;
    c.outbuf += bytes;
    ++stats_.records_streamed;
    maybeFinish(c);
    wake_.notify();
}

// ---------------------------------------------------------------------------
// Event loop.

void
CompileServer::eventLoop()
{
    bool flush_deadline_set = false;
    Clock::time_point flush_deadline{};

    for (;;) {
        // Snapshot the fd set under the lock; poll() without it so the
        // sink threads never wait a whole poll tick for mu_. Only this
        // thread closes fds, so the snapshot stays valid across poll.
        std::vector<pollfd> pfds;
        std::vector<std::uint64_t> pfd_conn;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (!draining_ &&
                drain_requested_.load(std::memory_order_acquire))
                beginDrainLocked();

            pfds.push_back({wake_.readFd(), POLLIN, 0});
            pfd_conn.push_back(0);
            if (listener_.valid()) {
                pfds.push_back({listener_.get(), POLLIN, 0});
                pfd_conn.push_back(0);
            }
            for (const auto &[id, cp] : conns_) {
                const Connection &c = *cp;
                short events = 0;
                if (!c.peer_closed_read)
                    events |= POLLIN;
                if (c.outoff < c.outbuf.size())
                    events |= POLLOUT;
                if (events == 0)
                    continue;
                pfds.push_back({c.fd.get(), events, 0});
                pfd_conn.push_back(id);
            }
        }

        // A fixed tick bounds timeout-reaping and drain-progress
        // latency; everything else is event-driven via the wake pipe.
        const int rc = ::poll(pfds.data(), pfds.size(), 100);
        if (rc < 0 && errno != EINTR && errno != EAGAIN)
            fatal("zac_serve: poll failed: " +
                  std::string(std::strerror(errno)));

        const Clock::time_point now = Clock::now();
        if (pfds[0].revents != 0)
            wake_.drain();

        {
            std::lock_guard<std::mutex> lock(mu_);
            const bool listener_polled = pfds.size() > 1 &&
                                         pfd_conn[1] == 0 &&
                                         listener_.valid() &&
                                         pfds[1].fd == listener_.get();
            if (listener_polled && pfds[1].revents != 0)
                acceptNew(now);
        }

        for (std::size_t i = 1; i < pfds.size(); ++i) {
            if (pfd_conn[i] == 0 || pfds[i].revents == 0)
                continue;
            const std::uint64_t id = pfd_conn[i];
            if (pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) {
                std::lock_guard<std::mutex> lock(mu_);
                if (!handleReadable(id, now))
                    continue;
            }
            if (pfds[i].revents & POLLOUT) {
                std::lock_guard<std::mutex> lock(mu_);
                handleWritable(id, now);
            }
        }

        {
            std::lock_guard<std::mutex> lock(mu_);
            reapTimeouts(now);

            // Flush-driven closes (records routed by sink threads
            // while we slept).
            std::vector<std::uint64_t> writable;
            for (const auto &[id, cp] : conns_)
                if (cp->outoff < cp->outbuf.size() ||
                    cp->close_after_flush)
                    writable.push_back(id);
            for (std::uint64_t id : writable)
                handleWritable(id, now);

            if (draining_) {
                if (!flush_deadline_set &&
                    service_drained_.load(std::memory_order_acquire)) {
                    flush_deadline_set = true;
                    flush_deadline =
                        now + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(
                                      config_.flush_deadline_seconds));
                }
                if (flush_deadline_set) {
                    if (conns_.empty())
                        return;
                    if (now >= flush_deadline) {
                        warn("zac_serve: flush deadline expired with " +
                             std::to_string(conns_.size()) +
                             " connection(s) unflushed");
                        drained_clean_ = false;
                        std::vector<std::uint64_t> ids;
                        for (const auto &[id, cp] : conns_)
                            ids.push_back(id);
                        for (std::uint64_t id : ids)
                            closeConnection(id, true);
                        return;
                    }
                }
            }
        }
    }
}

void
CompileServer::beginDrainLocked()
{
    draining_ = true;
    listener_.reset(); // stop accepting
    lanes_.close();    // admitter drains the backlog, then the service
    for (auto &[id, cp] : conns_) {
        Connection &c = *cp;
        if (c.mode == Connection::Mode::Compile) {
            // Anything already parsed gets its record; the unread
            // remainder of the body is abandoned (the early close
            // tells the client its tail was not admitted).
            if (!c.request_done) {
                c.request_done = true;
                maybeFinish(c);
            }
        } else if (c.mode == Connection::Mode::Request &&
                   !c.response_started) {
            queueSimpleResponse(c, 503, reasonPhrase(503),
                                "server is draining");
        }
    }
}

void
CompileServer::acceptNew(Clock::time_point now)
{
    for (;;) {
        const int raw = ::accept(listener_.get(), nullptr, nullptr);
        if (raw < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN & friends: nothing more to accept
        }
        Fd fd(raw);
        if (!setNonBlocking(raw))
            continue; // drop: cannot safely serve a blocking fd
        ++stats_.connections_accepted;

        auto c = std::make_unique<Connection>();
        c->id = next_conn_id_++;
        c->fd = std::move(fd);
        c->parser = HttpRequestParser(config_.http_limits);
        c->last_read = now;
        c->last_write_progress = now;

        if (conns_.size() >= config_.max_connections) {
            // Load shedding with the protocol's own vocabulary: the
            // client sees the same `overloaded` terminal record the
            // service emits past its admission high-water mark.
            ++stats_.connections_rejected_overloaded;
            json::Object o;
            o["type"] = "error";
            o["status"] =
                service::jobStatusName(service::JobStatus::Overloaded);
            o["error"] = "server at connection capacity";
            c->outbuf = httpSimpleResponse(503, reasonPhrase(503),
                                           "application/x-ndjson",
                                           service::toJsonl(o));
            c->mode = Connection::Mode::Simple;
            c->response_started = true;
            c->request_done = true;
            c->close_after_flush = true;
        }
        conns_.emplace(c->id, std::move(c));
    }
}

bool
CompileServer::handleReadable(std::uint64_t conn_id,
                              Clock::time_point now)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end())
        return false;
    Connection &c = *it->second;

    char buf[65536];
    for (;;) {
        const ssize_t r = ::recv(c.fd.get(), buf, sizeof(buf), 0);
        if (r > 0) {
            c.last_read = now;
            // Simple/lingering connections discard further input (the
            // parser ignores surplus after Complete/Error anyway; this
            // also drains the pipe so closing cannot RST the response
            // off the wire).
            if (c.mode != Connection::Mode::Simple && !c.lingering) {
                c.parser.feed(buf, static_cast<std::size_t>(r));
                afterFeed(c);
                if (conns_.find(conn_id) == conns_.end())
                    return false;
            }
            continue;
        }
        if (r == 0) {
            c.peer_closed_read = true;
            if (c.lingering || c.mode == Connection::Mode::Simple)
                return true; // response still flushing
            const bool complete =
                c.parser.state() == HttpRequestParser::State::Complete;
            if (!complete && !c.request_done) {
                // EOF mid-request: nothing sensible to answer.
                closeConnection(conn_id, true);
                return false;
            }
            return true;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;
        if (errno == EINTR)
            continue;
        closeConnection(conn_id, true); // ECONNRESET etc.
        return false;
    }
}

void
CompileServer::afterFeed(Connection &c)
{
    if (c.parser.state() == HttpRequestParser::State::Error &&
        c.mode == Connection::Mode::Request) {
        ++stats_.bad_requests;
        queueSimpleResponse(c, c.parser.errorStatus(),
                            reasonPhrase(c.parser.errorStatus()),
                            c.parser.errorReason());
        return;
    }
    if (c.mode == Connection::Mode::Request && c.parser.headersDone())
        dispatchRequest(c);
    if (c.mode == Connection::Mode::Compile)
        drainBodyLines(c);
}

void
CompileServer::dispatchRequest(Connection &c)
{
    const std::string &method = c.parser.method();
    const std::string &target = c.parser.target();

    if (target == "/healthz") {
        if (method != "GET") {
            ++stats_.bad_requests;
            queueSimpleResponse(c, 405, reasonPhrase(405),
                                "use GET for /healthz");
            return;
        }
        ++stats_.requests_healthz;
        c.outbuf += httpSimpleResponse(200, "OK", "application/json",
                                       healthzBody());
        c.mode = Connection::Mode::Simple;
        c.response_started = true;
        c.request_done = true;
        c.close_after_flush = true;
        return;
    }

    if (target != "/compile") {
        ++stats_.bad_requests;
        queueSimpleResponse(c, 404, reasonPhrase(404),
                            "unknown endpoint " + target);
        return;
    }
    if (method != "POST") {
        ++stats_.bad_requests;
        queueSimpleResponse(c, 405, reasonPhrase(405),
                            "use POST for /compile");
        return;
    }
    if (draining_) {
        queueSimpleResponse(c, 503, reasonPhrase(503),
                            "server is draining");
        return;
    }
    const std::optional<std::size_t> lane =
        laneFromName(c.parser.header("x-zac-lane"));
    if (!lane) {
        ++stats_.bad_requests;
        queueSimpleResponse(c, 400, reasonPhrase(400),
                            "unknown X-Zac-Lane value '" +
                                c.parser.header("x-zac-lane") + "'");
        return;
    }
    ++stats_.requests_compile;
    c.default_lane = *lane;
    c.mode = Connection::Mode::Compile;
    c.response_started = true;
    c.outbuf += httpResponseHead(
        200, "OK",
        {{"Content-Type", "application/x-ndjson"},
         {"Connection", "close"}});
}

void
CompileServer::drainBodyLines(Connection &c)
{
    std::string line;
    while (c.parser.nextBodyLine(line)) {
        ++c.body_lines;
        if (isBlankLine(line))
            continue;
        handleSubmitLine(c, line);
    }
    if (c.parser.state() == HttpRequestParser::State::Error) {
        // Only nextBodyLine() can error here (a single line past
        // max_body_line); the rest of the body is abandoned.
        ++stats_.bad_requests;
        ++c.body_lines;
        appendLineError(c, service::JobStatus::Failed,
                        c.parser.errorReason());
        c.request_done = true;
    } else if (c.parser.state() ==
               HttpRequestParser::State::Complete) {
        c.request_done = true;
    }
    if (c.request_done)
        maybeFinish(c);
}

void
CompileServer::handleSubmitLine(Connection &c, const std::string &line)
{
    service::CompileService::Submission sub;
    std::size_t lane = c.default_lane;
    try {
        const json::Value v = json::parse(line);
        const json::Object &o = v.asObject();
        if (!v.contains("circuit"))
            fatal("submit record needs a 'circuit'");
        const std::string ref = o.at("circuit").asString();
        sub.circuit = service::resolveCircuit(ref);
        sub.name = o.count("label") ? o.at("label").asString() : ref;
        if (sub.name.empty())
            sub.name = ref;
        if (o.count("target")) {
            const json::Value &tv = o.at("target");
            if (tv.isString()) {
                const std::string &name = tv.asString();
                const auto found =
                    std::find(target_names_.begin(),
                              target_names_.end(), name);
                if (found == target_names_.end())
                    fatal("unknown target '" + name + "'");
                sub.target = static_cast<int>(
                    found - target_names_.begin());
            } else {
                sub.target = static_cast<int>(tv.asInt());
                if (sub.target < 0 ||
                    sub.target >=
                        static_cast<int>(target_names_.size()))
                    fatal("target index out of range");
            }
        }
        if (o.count("seed"))
            sub.seed = static_cast<std::uint64_t>(
                o.at("seed").asInt());
        sub.timeout_seconds = v.numberOr("timeout_seconds", 0.0);
        if (o.count("lane")) {
            const std::optional<std::size_t> l =
                laneFromName(o.at("lane").asString());
            if (!l)
                fatal("unknown lane '" + o.at("lane").asString() +
                      "'");
            lane = *l;
        }
    } catch (const FatalError &e) {
        ++stats_.lines_rejected;
        appendLineError(c, service::JobStatus::Failed, e.what());
        return;
    }

    ++c.pending;
    ++stats_.lines_admitted;
    if (!lanes_.push(lane, c.id,
                     PendingSubmission{c.id, lane, std::move(sub)})) {
        // Lanes closed: the drain won the race with this line.
        --c.pending;
        --stats_.lines_admitted;
        ++stats_.lines_rejected;
        appendLineError(c, service::JobStatus::Overloaded,
                        "server is draining");
    }
}

void
CompileServer::queueSimpleResponse(Connection &c, int status,
                                   const std::string &reason,
                                   const std::string &message)
{
    if (c.response_started) {
        // Too late for an HTTP status line; drop the connection.
        closeConnection(c.id, true);
        return;
    }
    json::Object o;
    o["type"] = "error";
    o["status"] = service::jobStatusName(
        status == 503 ? service::JobStatus::Overloaded
                      : service::JobStatus::Failed);
    o["http_status"] = status;
    o["error"] = message;
    c.outbuf += httpSimpleResponse(status, reason,
                                   "application/x-ndjson",
                                   service::toJsonl(o));
    c.mode = Connection::Mode::Simple;
    c.response_started = true;
    c.request_done = true;
    c.close_after_flush = true;
}

void
CompileServer::appendLineError(Connection &c,
                               service::JobStatus status,
                               const std::string &message)
{
    // Inline synthetic record: a body line that never became a job
    // still gets exactly one response record.
    json::Object o;
    o["type"] = "error";
    o["status"] = service::jobStatusName(status);
    o["line"] = static_cast<std::int64_t>(c.body_lines);
    o["error"] = message;
    c.outbuf += service::toJsonl(o);
}

std::string
CompileServer::healthzBody()
{
    const service::CompileService::ServiceStats s =
        service_->serviceStats();
    json::Object o;
    o["status"] = draining_ || s.draining ? "draining" : "ok";
    o["uptime_seconds"] = s.uptime_seconds;
    o["workers"] = s.workers;
    o["queue_depth"] = static_cast<std::int64_t>(s.queue_depth);
    o["pending_jobs"] = static_cast<std::int64_t>(s.pending);
    o["lanes"] = json::Object{
        {"interactive_depth",
         static_cast<std::int64_t>(lanes_.laneSize(kLaneInteractive))},
        {"batch_depth",
         static_cast<std::int64_t>(lanes_.laneSize(kLaneBatch))},
        {"interactive_weight", config_.interactive_weight},
        {"batch_weight", config_.batch_weight},
    };
    const service::CompileService::Stats &j = s.counters;
    o["jobs"] = json::Object{
        {"submitted", static_cast<std::int64_t>(j.submitted)},
        {"delivered", static_cast<std::int64_t>(j.delivered)},
        {"overloaded", static_cast<std::int64_t>(j.overloaded)},
        {"transient_failures",
         static_cast<std::int64_t>(j.transient_failures)},
        {"retries", static_cast<std::int64_t>(j.retries)},
        {"retries_exhausted",
         static_cast<std::int64_t>(j.retries_exhausted)},
        {"coalesced_served",
         static_cast<std::int64_t>(j.coalesced_served)},
        {"coalesced_requeued",
         static_cast<std::int64_t>(j.coalesced_requeued)},
    };
    o["cache"] = json::Object{
        {"hits", static_cast<std::int64_t>(s.cache.hits)},
        {"misses", static_cast<std::int64_t>(s.cache.misses)},
        {"entries", static_cast<std::int64_t>(s.cache.entries)},
        {"insertions", static_cast<std::int64_t>(s.cache.insertions)},
        {"evictions", static_cast<std::int64_t>(s.cache.evictions)},
        {"snapshot_records_loaded",
         static_cast<std::int64_t>(j.snapshot_records_loaded)},
        {"snapshot_records_written",
         static_cast<std::int64_t>(j.snapshot_records_written)},
    };
    o["warm_contexts"] = json::Object{
        {"hits", static_cast<std::int64_t>(s.warm.hits)},
        {"misses", static_cast<std::int64_t>(s.warm.misses)},
        {"evictions", static_cast<std::int64_t>(s.warm.evictions)},
        {"entries", static_cast<std::int64_t>(s.warm.entries)},
        {"build_seconds", s.warm.build_seconds},
    };
    o["connections"] = json::Object{
        {"active", static_cast<std::int64_t>(conns_.size())},
        {"accepted",
         static_cast<std::int64_t>(stats_.connections_accepted)},
        {"rejected_overloaded", static_cast<std::int64_t>(
                                    stats_.connections_rejected_overloaded)},
        {"timed_out",
         static_cast<std::int64_t>(stats_.connections_timed_out)},
    };
    o["requests"] = json::Object{
        {"compile", static_cast<std::int64_t>(stats_.requests_compile)},
        {"healthz", static_cast<std::int64_t>(stats_.requests_healthz)},
        {"bad", static_cast<std::int64_t>(stats_.bad_requests)},
        {"lines_admitted",
         static_cast<std::int64_t>(stats_.lines_admitted)},
        {"lines_rejected",
         static_cast<std::int64_t>(stats_.lines_rejected)},
        {"records_streamed",
         static_cast<std::int64_t>(stats_.records_streamed)},
    };
    return json::Value(o).dump(2) + "\n";
}

void
CompileServer::maybeFinish(Connection &c)
{
    if (c.mode == Connection::Mode::Compile && c.request_done &&
        c.pending == 0)
        c.close_after_flush = true;
}

bool
CompileServer::handleWritable(std::uint64_t conn_id,
                              Clock::time_point now)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end())
        return false;
    Connection &c = *it->second;

    while (c.outoff < c.outbuf.size()) {
        const ssize_t w =
            ::send(c.fd.get(), c.outbuf.data() + c.outoff,
                   c.outbuf.size() - c.outoff, MSG_NOSIGNAL);
        if (w > 0) {
            c.outoff += static_cast<std::size_t>(w);
            c.last_write_progress = now;
            continue;
        }
        if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (w < 0 && errno == EINTR)
            continue;
        closeConnection(conn_id, true); // EPIPE/ECONNRESET
        return false;
    }

    if (c.outoff == c.outbuf.size()) {
        c.outbuf.clear();
        c.outoff = 0;
        if (c.close_after_flush) {
            // If the client may still be sending (we errored before
            // reading the full request), half-close and linger so the
            // response is not torn off the wire by an RST.
            const bool unread_possible =
                !c.peer_closed_read &&
                c.parser.state() != HttpRequestParser::State::Complete;
            if (unread_possible && !c.lingering) {
                ::shutdown(c.fd.get(), SHUT_WR);
                c.lingering = true;
                c.last_read = now; // restart the linger clock
            } else if (!unread_possible) {
                closeConnection(conn_id, false);
                return false;
            }
        }
    } else if (c.outoff > (1u << 16)) {
        c.outbuf.erase(0, c.outoff);
        c.outoff = 0;
    }
    return true;
}

void
CompileServer::closeConnection(std::uint64_t conn_id, bool cancel_jobs)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end())
        return;
    Connection &c = *it->second;
    lanes_.dropClient(conn_id);
    if (cancel_jobs || !c.live_jobs.empty()) {
        for (std::uint64_t job : c.live_jobs) {
            job_conn_.erase(job);
            discarded_jobs_.insert(job);
            service_->cancel(job);
        }
    }
    conns_.erase(it);
}

void
CompileServer::reapTimeouts(Clock::time_point now)
{
    std::vector<std::uint64_t> stale_read, stale_write;
    for (const auto &[id, cp] : conns_) {
        const Connection &c = *cp;
        if (config_.read_timeout_seconds > 0) {
            const bool awaiting_input =
                c.lingering ||
                (!c.request_done &&
                 c.parser.state() !=
                     HttpRequestParser::State::Complete);
            if (awaiting_input &&
                secondsBetween(c.last_read, now) >
                    config_.read_timeout_seconds)
                stale_read.push_back(id);
        }
        if (config_.write_timeout_seconds > 0 &&
            c.outoff < c.outbuf.size() &&
            secondsBetween(c.last_write_progress, now) >
                config_.write_timeout_seconds)
            stale_write.push_back(id);
    }
    for (std::uint64_t id : stale_read) {
        auto it = conns_.find(id);
        if (it == conns_.end())
            continue;
        Connection &c = *it->second;
        ++stats_.connections_timed_out;
        if (!c.response_started) {
            queueSimpleResponse(c, 408, reasonPhrase(408),
                                "request read timed out");
        } else {
            closeConnection(id, true);
        }
    }
    for (std::uint64_t id : stale_write) {
        if (conns_.count(id) == 0)
            continue;
        ++stats_.connections_timed_out;
        closeConnection(id, true);
    }
}

} // namespace zac::net
