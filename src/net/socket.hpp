/**
 * @file
 * Thin POSIX TCP helpers for the network compile daemon and its
 * clients: RAII file descriptors, a non-blocking listener, a blocking
 * connector with a timeout, and a self-pipe for waking a poll() loop
 * from other threads (and from signal handlers — write() is on the
 * async-signal-safe list, which is exactly why the drain path is a
 * pipe and not a condition variable).
 *
 * Deliberately minimal: IPv4/IPv6 via getaddrinfo, no TLS, no
 * platform abstraction beyond POSIX — the daemon targets Linux
 * containers (see Dockerfile) and the CI runners.
 */

#ifndef ZAC_NET_SOCKET_HPP
#define ZAC_NET_SOCKET_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace zac::net
{

/** Move-only owning file descriptor (closes on destruction). */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;
    Fd(Fd &&other) noexcept : fd_(other.release()) {}
    Fd &
    operator=(Fd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.release();
        }
        return *this;
    }

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    int
    release()
    {
        return std::exchange(fd_, -1);
    }
    void reset(int fd = -1);

  private:
    int fd_ = -1;
};

/** Set O_NONBLOCK on @p fd. @return false on failure. */
bool setNonBlocking(int fd);

/**
 * Create a listening TCP socket bound to @p host:@p port
 * (SO_REUSEADDR, non-blocking; @p port 0 picks an ephemeral port).
 * @throws zac::FatalError with the resolver/syscall detail.
 */
Fd tcpListen(const std::string &host, std::uint16_t port,
             int backlog = 128);

/** The locally bound port of @p fd (after tcpListen with port 0). */
std::uint16_t localPort(int fd);

/**
 * Blocking connect to @p host:@p port with an overall @p
 * timeout_seconds (also installed as the socket's send/receive
 * timeout). @throws zac::FatalError on resolve/connect failure.
 */
Fd tcpConnect(const std::string &host, std::uint16_t port,
              double timeout_seconds = 10.0);

/**
 * Write all of @p data to the (blocking) socket @p fd, retrying short
 * writes; SIGPIPE is suppressed. @return false on error/timeout.
 */
bool sendAll(int fd, const void *data, std::size_t n);

/**
 * Read from blocking socket @p fd until EOF (or error/timeout),
 * appending to @p out. @return true iff EOF was reached cleanly.
 */
bool recvUntilClose(int fd, std::string &out);

/**
 * A non-blocking self-pipe: poll() the read end, notify() from any
 * thread or signal handler, drain() before re-arming.
 */
class WakePipe
{
  public:
    WakePipe();

    int readFd() const { return read_.get(); }
    /** Write one wake byte; async-signal-safe, never blocks. */
    void notify() noexcept;
    /** Consume pending wake bytes (level-triggered re-arm). */
    void drain() noexcept;

  private:
    Fd read_, write_;
};

} // namespace zac::net

#endif // ZAC_NET_SOCKET_HPP
