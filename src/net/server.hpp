/**
 * @file
 * zac_serve's engine: a long-running TCP daemon fronting the
 * fault-tolerant CompileService (ISSUE 8 — the transport layer the
 * ROADMAP's "network service daemon" item calls for).
 *
 * Protocol (one request per connection, response then close):
 *  - `POST /compile` — body is JSONL, one submit record per line
 *    (the manifest-job vocabulary: {"circuit": ..., "label": ...,
 *    "target": name-or-index, "seed": ..., "timeout_seconds": ...,
 *    "lane": "interactive"|"batch"}). The response streams one
 *    terminal JSONL record per line as workers finish — the records
 *    are produced by the same `protocol.*` writer as zac_batch, so
 *    the served payload bytes are byte-identical to the offline
 *    output (modulo the wall-clock timing fields; cache hits
 *    included). Lines are admitted while the body is still
 *    uploading.
 *  - `GET /healthz` — liveness plus a coherent counters snapshot
 *    (queue depth, lanes, cache hit/miss, retries, uptime).
 *
 * Fair scheduling: parsed submissions do not go straight into the
 * service's bounded queue — they pass through a WeightedLaneQueue
 * (interactive vs. batch, weighted round-robin across lanes,
 * round-robin across connections within a lane) pumped by a single
 * admitter thread. The service queue's bound throttles the admitter;
 * the lanes re-order what is still unadmitted, so one greedy batch
 * client cannot starve interactive work by more than a few jobs.
 *
 * Lifecycle: per-connection read/write timeouts; a max-connections
 * cap answered with the protocol's existing `overloaded` status
 * (HTTP 503); requestDrain() — async-signal-safe, wired to
 * SIGTERM/SIGINT by zac_serve — stops accepting, admits what was
 * already parsed, runs CompileService::drainAndStop(deadline) (cache
 * snapshot flush included), flushes response buffers, and returns
 * from run() with the clean/forced verdict.
 *
 * Threading: one poll()-based event loop (the run() caller) owns the
 * sockets; one admitter thread pumps lanes into the service; service
 * workers deliver records through the sink, which routes the
 * serialized bytes into per-connection write buffers and wakes the
 * loop through a self-pipe. A record can be delivered before the
 * admitter learns its job id (submit() can complete the job before
 * returning) — such records park in an orphan buffer keyed by job id
 * and are routed when the id→connection binding lands.
 */

#ifndef ZAC_NET_SERVER_HPP
#define ZAC_NET_SERVER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/http.hpp"
#include "net/socket.hpp"
#include "service/lanes.hpp"
#include "service/service.hpp"

namespace zac::net
{

/** The two admission lanes (indices into the lane queue). */
enum : std::size_t
{
    kLaneInteractive = 0,
    kLaneBatch = 1,
    kNumLanes = 2,
};

struct ServerConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0; ///< 0 picks an ephemeral port
    int backlog = 128;

    /** Accepted-connection cap; connections past it are answered
     *  with HTTP 503 + an `overloaded` JSONL error record. */
    std::size_t max_connections = 256;
    /** Max idle seconds while a request is incomplete (408 on
     *  expiry). <= 0 disables. */
    double read_timeout_seconds = 10.0;
    /** Max seconds without flushing progress while response bytes
     *  are pending (connection dropped, jobs cancelled). <= 0
     *  disables. */
    double write_timeout_seconds = 30.0;
    /** Deadline handed to CompileService::drainAndStop() on drain
     *  (0 = wait for all in-flight work). */
    double drain_deadline_seconds = 0.0;
    /** Max seconds to flush remaining response bytes after the
     *  service drained. */
    double flush_deadline_seconds = 10.0;

    /** Weighted round-robin admission weights (see lanes.hpp). */
    int interactive_weight = 4;
    int batch_weight = 1;

    /** Embed the full ZAIR program in result records. */
    bool include_zair = true;

    HttpRequestParser::Limits http_limits;
    /** The wrapped engine's configuration (workers, cache, retry,
     *  snapshot persistence, fault injection, ...). */
    service::CompileService::Config service;
};

/** Server-side monotonic counters (surfaced by /healthz). */
struct NetStats
{
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_rejected_overloaded = 0;
    std::uint64_t connections_timed_out = 0;
    std::uint64_t requests_compile = 0;
    std::uint64_t requests_healthz = 0;
    std::uint64_t bad_requests = 0;
    std::uint64_t lines_admitted = 0;
    std::uint64_t lines_rejected = 0;
    std::uint64_t records_streamed = 0;
    std::size_t active_connections = 0;
};

/** The network compile daemon (see file comment). */
class CompileServer
{
  public:
    CompileServer(std::vector<service::CompileTarget> targets,
                  ServerConfig config);
    ~CompileServer();

    CompileServer(const CompileServer &) = delete;
    CompileServer &operator=(const CompileServer &) = delete;

    /**
     * Bind and listen (must precede run()).
     * @return the actually bound port (useful with port 0).
     * @throws zac::FatalError when the address cannot be bound.
     */
    std::uint16_t listen();

    /**
     * The blocking event loop: serves until requestDrain(), then
     * drains and returns. Call from one thread only, after listen().
     * @return true when the drain finished without the deadline
     *         forcing cancellations.
     */
    bool run();

    /**
     * Begin graceful shutdown: stop accepting, admit everything
     * already parsed, drainAndStop(deadline) (flushes the cache
     * snapshot), flush responses, make run() return.
     * Async-signal-safe and idempotent.
     */
    void requestDrain() noexcept;

    std::uint16_t port() const { return port_; }
    NetStats netStats() const;

  private:
    struct Connection
    {
        enum class Mode
        {
            Request, ///< still routing (parsing request line/headers)
            Compile, ///< POST /compile: streaming result records
            Simple,  ///< fixed response queued; close after flush
        };

        std::uint64_t id = 0;
        Fd fd;
        HttpRequestParser parser;
        Mode mode = Mode::Request;
        std::size_t default_lane = kLaneInteractive;

        std::string outbuf;
        std::size_t outoff = 0;

        bool response_started = false;
        bool close_after_flush = false;
        bool request_done = false;  ///< no further submissions
        bool peer_closed_read = false;
        /** Lingering close: response flushed + write side shut down,
         *  draining unread request bytes to avoid an RST that could
         *  discard the error response in flight. */
        bool lingering = false;
        std::size_t body_lines = 0; ///< body lines seen (for errors)
        std::size_t pending = 0;    ///< admitted lines awaiting records
        std::set<std::uint64_t> live_jobs; ///< submitted, not terminal

        std::chrono::steady_clock::time_point last_read;
        std::chrono::steady_clock::time_point last_write_progress;
    };

    struct PendingSubmission
    {
        std::uint64_t conn_id = 0;
        std::size_t lane = kLaneInteractive;
        service::CompileService::Submission sub;
    };

    void eventLoop();
    void admitterLoop();
    void acceptNew(std::chrono::steady_clock::time_point now);
    /** @return false when the connection was closed. */
    bool handleReadable(std::uint64_t conn_id,
                        std::chrono::steady_clock::time_point now);
    bool handleWritable(std::uint64_t conn_id,
                        std::chrono::steady_clock::time_point now);
    void afterFeed(Connection &c);
    void dispatchRequest(Connection &c);
    void drainBodyLines(Connection &c);
    void handleSubmitLine(Connection &c, const std::string &line);
    void queueSimpleResponse(Connection &c, int status,
                             const std::string &reason,
                             const std::string &message);
    void appendLineError(Connection &c, service::JobStatus status,
                         const std::string &message);
    std::string healthzBody();
    void maybeFinish(Connection &c);
    void closeConnection(std::uint64_t conn_id, bool cancel_jobs);
    void reapTimeouts(std::chrono::steady_clock::time_point now);
    void beginDrainLocked();
    /** The CompileService sink: route one terminal record. */
    void routeRecord(const service::JobRecord &record);

    std::vector<std::string> target_names_;
    ServerConfig config_;

    Fd listener_;
    std::uint16_t port_ = 0;
    WakePipe wake_;
    std::atomic<bool> drain_requested_{false};
    std::atomic<bool> service_drained_{false};
    bool draining_ = false; ///< event-loop-private once observed

    service::WeightedLaneQueue<PendingSubmission> lanes_;
    std::unique_ptr<service::CompileService> service_;
    std::thread admitter_;
    bool drained_clean_ = true; ///< admitter writes before flagging

    mutable std::mutex mu_;
    std::uint64_t next_conn_id_ = 1;
    std::map<std::uint64_t, std::unique_ptr<Connection>> conns_;
    /** job id -> owning connection, bound by the admitter. */
    std::unordered_map<std::uint64_t, std::uint64_t> job_conn_;
    /** Records delivered before their id→connection binding. */
    std::unordered_map<std::uint64_t, std::string> orphans_;
    /** Jobs whose connection died; their records are dropped. */
    std::set<std::uint64_t> discarded_jobs_;
    NetStats stats_;
};

} // namespace zac::net

#endif // ZAC_NET_SERVER_HPP
