#include "net/socket.hpp"

#include <cerrno>
#include <cmath>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hpp"

namespace zac::net
{

namespace
{

std::string
errnoString()
{
    return std::strerror(errno);
}

timeval
toTimeval(double seconds)
{
    if (seconds < 0.0)
        seconds = 0.0;
    timeval tv;
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - std::floor(seconds)) * 1e6);
    return tv;
}

/** getaddrinfo wrapper; @return the first address that satisfies
 *  @p use (which must consume or close the socket it is handed). */
template <typename Fn>
Fd
resolveAndOpen(const std::string &host, std::uint16_t port,
               bool passive, Fn &&use)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = passive ? AI_PASSIVE : 0;
    const std::string port_str = std::to_string(port);

    addrinfo *res = nullptr;
    const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                                 port_str.c_str(), &hints, &res);
    if (rc != 0)
        fatal("net: cannot resolve " + host + ":" + port_str + ": " +
              gai_strerror(rc));

    std::string last_error = "no addresses";
    Fd out;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        Fd fd(::socket(ai->ai_family, ai->ai_socktype,
                       ai->ai_protocol));
        if (!fd.valid()) {
            last_error = errnoString();
            continue;
        }
        if (use(fd, ai, last_error)) {
            out = std::move(fd);
            break;
        }
    }
    ::freeaddrinfo(res);
    if (!out.valid())
        fatal("net: cannot open socket to " + host + ":" + port_str +
              ": " + last_error);
    return out;
}

} // namespace

void
Fd::reset(int fd)
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = fd;
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

Fd
tcpListen(const std::string &host, std::uint16_t port, int backlog)
{
    return resolveAndOpen(
        host, port, /*passive=*/true,
        [&](Fd &fd, addrinfo *ai, std::string &err) {
            const int one = 1;
            ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof(one));
            if (::bind(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0 ||
                ::listen(fd.get(), backlog) != 0 ||
                !setNonBlocking(fd.get())) {
                err = errnoString();
                return false;
            }
            return true;
        });
}

std::uint16_t
localPort(int fd)
{
    sockaddr_storage addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) !=
        0)
        fatal("net: getsockname failed: " + errnoString());
    if (addr.ss_family == AF_INET)
        return ntohs(reinterpret_cast<sockaddr_in *>(&addr)->sin_port);
    if (addr.ss_family == AF_INET6)
        return ntohs(
            reinterpret_cast<sockaddr_in6 *>(&addr)->sin6_port);
    fatal("net: getsockname: unexpected address family");
}

Fd
tcpConnect(const std::string &host, std::uint16_t port,
           double timeout_seconds)
{
    return resolveAndOpen(
        host, port, /*passive=*/false,
        [&](Fd &fd, addrinfo *ai, std::string &err) {
            const timeval tv = toTimeval(timeout_seconds);
            ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv,
                         sizeof(tv));
            ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDTIMEO, &tv,
                         sizeof(tv));
            if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) !=
                0) {
                err = errnoString();
                return false;
            }
            return true;
        });
}

bool
sendAll(int fd, const void *data, std::size_t n)
{
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

bool
recvUntilClose(int fd, std::string &out)
{
    char buf[65536];
    for (;;) {
        const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
        if (r == 0)
            return true;
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        out.append(buf, static_cast<std::size_t>(r));
    }
}

WakePipe::WakePipe()
{
    int fds[2];
    if (::pipe(fds) != 0)
        fatal("net: cannot create wake pipe: " + errnoString());
    read_.reset(fds[0]);
    write_.reset(fds[1]);
    // Both ends non-blocking: notify() must never block a signal
    // handler (a full pipe already means a wake-up is pending), and
    // drain() must never block the event loop.
    if (!setNonBlocking(read_.get()) ||
        !setNonBlocking(write_.get()))
        fatal("net: cannot configure wake pipe: " + errnoString());
}

void
WakePipe::notify() noexcept
{
    const char byte = 1;
    // EAGAIN means the pipe already holds a pending wake-up; any other
    // failure is ignorable for the same reason (level-triggered).
    [[maybe_unused]] ssize_t rc =
        ::write(write_.get(), &byte, 1);
}

void
WakePipe::drain() noexcept
{
    char buf[256];
    while (::read(read_.get(), buf, sizeof(buf)) > 0) {
    }
}

} // namespace zac::net
