/**
 * @file
 * Incremental HTTP/1.1 request framing for the compile daemon.
 *
 * The daemon speaks a deliberately small HTTP subset — enough for
 * curl, load balancer health checks, and the zac_client CLI:
 *  - request line + headers + Content-Length body (no chunked
 *    transfer, no multipart, no keep-alive pipelining: every
 *    connection carries one request and is closed after the
 *    response, which is exactly the short-lived-client model the
 *    churn bench measures);
 *  - the POST body is JSONL: the parser surfaces complete body
 *    *lines* as they arrive, so the server admits jobs while the
 *    request is still uploading (a large batch starts compiling
 *    before its last line hits the wire).
 *
 * The parser is a push state machine over partial reads: feed() any
 * fragmentation of the byte stream — byte-at-a-time included — and
 * the result is identical (unit-tested). Malformed or oversized input
 * moves the parser into Error with an HTTP status + reason the
 * connection layer turns into a clean error response; nothing throws
 * on wire input.
 */

#ifndef ZAC_NET_HTTP_HPP
#define ZAC_NET_HTTP_HPP

#include <cstddef>
#include <map>
#include <string>

namespace zac::net
{

/** Build a response head: status line + headers + blank line. */
std::string httpResponseHead(
    int status, const std::string &reason,
    const std::map<std::string, std::string> &headers);

/** Build a complete small response with a Content-Length body. */
std::string httpSimpleResponse(int status, const std::string &reason,
                               const std::string &content_type,
                               const std::string &body);

/** Incremental HTTP/1.x request parser (see file comment). */
class HttpRequestParser
{
  public:
    struct Limits
    {
        std::size_t max_request_line = 8 * 1024;
        std::size_t max_header_bytes = 16 * 1024;
        std::size_t max_body_bytes = 64 * 1024 * 1024;
        /** Longest single JSONL body line (one submit record). */
        std::size_t max_body_line = 4 * 1024 * 1024;
    };

    enum class State
    {
        RequestLine, ///< accumulating the request line
        Headers,     ///< accumulating header lines
        Body,        ///< consuming Content-Length body bytes
        Complete,    ///< full request received
        Error,       ///< invalid input; see errorStatus()/errorReason()
    };

    HttpRequestParser(); ///< default Limits
    explicit HttpRequestParser(Limits limits);

    /** Consume @p n bytes of wire input (any fragmentation). */
    void feed(const char *data, std::size_t n);

    State state() const { return state_; }
    bool headersDone() const
    {
        return state_ == State::Body || state_ == State::Complete;
    }

    /** Valid once headersDone() (or in Error after the request line). */
    const std::string &method() const { return method_; }
    const std::string &target() const { return target_; }

    /** Case-insensitive header lookup. @return "" when absent. */
    const std::string &header(const std::string &lower_name) const;
    bool hasHeader(const std::string &lower_name) const;

    std::size_t contentLength() const { return content_length_; }
    std::size_t bodyBytesReceived() const { return body_received_; }

    /**
     * Pop the next complete body line (LF-delimited, trailing CR
     * stripped). Once the body is Complete, a final unterminated line
     * is surfaced too. @return false when no full line is pending.
     */
    bool nextBodyLine(std::string &line);

    /** HTTP status to answer with when state() == Error. */
    int errorStatus() const { return error_status_; }
    const std::string &errorReason() const { return error_reason_; }

  private:
    void feedLine(std::size_t upto);
    void parseRequestLine(const std::string &line);
    void parseHeaderLine(const std::string &line);
    void headersComplete();
    void setError(int status, std::string reason);

    Limits limits_;
    State state_ = State::RequestLine;

    std::string acc_;     ///< request-line/header accumulation
    std::size_t header_bytes_ = 0;

    std::string method_, target_;
    std::map<std::string, std::string> headers_; ///< lowercased names
    std::size_t content_length_ = 0;

    std::string body_acc_; ///< unconsumed body bytes (line-split lazily)
    std::size_t body_received_ = 0;
    bool final_line_emitted_ = false;

    int error_status_ = 0;
    std::string error_reason_;
};

} // namespace zac::net

#endif // ZAC_NET_HTTP_HPP
