#include "net/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>

namespace zac::net
{

namespace
{

const std::string kEmpty;

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && (s[b] == ' ' || s[b] == '\t'))
        ++b;
    while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t'))
        --e;
    return s.substr(b, e - b);
}

} // namespace

std::string
httpResponseHead(int status, const std::string &reason,
                 const std::map<std::string, std::string> &headers)
{
    std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                      reason + "\r\n";
    for (const auto &[name, value] : headers)
        out += name + ": " + value + "\r\n";
    out += "\r\n";
    return out;
}

std::string
httpSimpleResponse(int status, const std::string &reason,
                   const std::string &content_type,
                   const std::string &body)
{
    return httpResponseHead(
               status, reason,
               {{"Content-Type", content_type},
                {"Content-Length", std::to_string(body.size())},
                {"Connection", "close"}}) +
           body;
}

HttpRequestParser::HttpRequestParser() = default;

HttpRequestParser::HttpRequestParser(Limits limits) : limits_(limits)
{
}

const std::string &
HttpRequestParser::header(const std::string &lower_name) const
{
    auto it = headers_.find(lower_name);
    return it == headers_.end() ? kEmpty : it->second;
}

bool
HttpRequestParser::hasHeader(const std::string &lower_name) const
{
    return headers_.count(lower_name) > 0;
}

void
HttpRequestParser::setError(int status, std::string reason)
{
    state_ = State::Error;
    error_status_ = status;
    error_reason_ = std::move(reason);
    acc_.clear();
    body_acc_.clear();
}

void
HttpRequestParser::feed(const char *data, std::size_t n)
{
    std::size_t i = 0;
    while (i < n) {
        switch (state_) {
          case State::Error:
          case State::Complete:
            return; // surplus bytes are ignored (connection closes)

          case State::RequestLine:
          case State::Headers: {
            // Accumulate until LF; enforce limits on the partial
            // accumulation too, so an attacker cannot buffer
            // unbounded bytes by never sending a newline.
            const char *nl = static_cast<const char *>(
                std::memchr(data + i, '\n', n - i));
            const std::size_t take =
                (nl ? static_cast<std::size_t>(nl - (data + i)) + 1
                    : n - i);
            acc_.append(data + i, take);
            i += take;
            if (state_ == State::RequestLine &&
                acc_.size() > limits_.max_request_line) {
                setError(414, "request line too long");
                return;
            }
            if (state_ == State::Headers) {
                header_bytes_ += take;
                if (header_bytes_ > limits_.max_header_bytes) {
                    setError(431, "header section too large");
                    return;
                }
            }
            if (!nl)
                break;
            std::string line = std::move(acc_);
            acc_.clear();
            line.pop_back(); // '\n'
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (state_ == State::RequestLine)
                parseRequestLine(line);
            else
                parseHeaderLine(line);
            break;
          }

          case State::Body: {
            const std::size_t want = content_length_ - body_received_;
            const std::size_t take = std::min(want, n - i);
            body_acc_.append(data + i, take);
            body_received_ += take;
            i += take;
            if (body_received_ == content_length_)
                state_ = State::Complete;
            break;
          }
        }
    }
}

void
HttpRequestParser::parseRequestLine(const std::string &line)
{
    if (line.empty())
        return; // tolerate leading blank lines (RFC 9112 §2.2)
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.find(' ', sp2 + 1) != std::string::npos) {
        setError(400, "malformed request line");
        return;
    }
    method_ = line.substr(0, sp1);
    target_ = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = line.substr(sp2 + 1);
    if (method_.empty() ||
        !std::all_of(method_.begin(), method_.end(), [](char c) {
            return c >= 'A' && c <= 'Z';
        })) {
        setError(400, "malformed method");
        return;
    }
    if (target_.empty() || target_[0] != '/') {
        setError(400, "malformed request target");
        return;
    }
    if (version != "HTTP/1.1" && version != "HTTP/1.0") {
        setError(505, "unsupported HTTP version");
        return;
    }
    state_ = State::Headers;
}

void
HttpRequestParser::parseHeaderLine(const std::string &line)
{
    if (line.empty()) {
        headersComplete();
        return;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
        setError(400, "malformed header line");
        return;
    }
    headers_[toLower(trim(line.substr(0, colon)))] =
        trim(line.substr(colon + 1));
}

void
HttpRequestParser::headersComplete()
{
    if (hasHeader("transfer-encoding")) {
        setError(501, "transfer-encoding not supported");
        return;
    }
    if (hasHeader("content-length")) {
        const std::string &v = header("content-length");
        if (v.empty() ||
            !std::all_of(v.begin(), v.end(), [](unsigned char c) {
                return std::isdigit(c);
            }) ||
            v.size() > 15) {
            setError(400, "malformed content-length");
            return;
        }
        content_length_ = std::stoull(v);
        if (content_length_ > limits_.max_body_bytes) {
            setError(413, "request body too large");
            return;
        }
    } else if (method_ == "POST" || method_ == "PUT") {
        setError(411, "content-length required");
        return;
    }
    state_ = content_length_ > 0 ? State::Body : State::Complete;
}

bool
HttpRequestParser::nextBodyLine(std::string &line)
{
    const std::size_t nl = body_acc_.find('\n');
    if (nl != std::string::npos) {
        line.assign(body_acc_, 0, nl);
        body_acc_.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        return true;
    }
    if (body_acc_.size() > limits_.max_body_line) {
        setError(413, "body line too long");
        return false;
    }
    // Final unterminated line: only once the body is complete.
    if (state_ == State::Complete && !body_acc_.empty() &&
        !final_line_emitted_) {
        line = std::move(body_acc_);
        body_acc_.clear();
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        final_line_emitted_ = true;
        return true;
    }
    return false;
}

} // namespace zac::net
