#include "zair/serialize.hpp"

#include "common/logging.hpp"

namespace zac
{

namespace
{

json::Value
qlocToJson(const QLoc &loc)
{
    return json::Array{loc.q, loc.a, loc.r, loc.c};
}

json::Value
qlocsToJson(const std::vector<QLoc> &locs)
{
    json::Array arr;
    for (const QLoc &l : locs)
        arr.push_back(qlocToJson(l));
    return arr;
}

json::Value
intsToJson(const std::vector<int> &v)
{
    json::Array arr;
    for (int x : v)
        arr.push_back(x);
    return arr;
}

json::Value
doublesToJson(const std::vector<double> &v)
{
    json::Array arr;
    for (double x : v)
        arr.push_back(x);
    return arr;
}

json::Value
machineToJson(const MachineInstr &mi)
{
    json::Object o;
    switch (mi.kind) {
      case MachineKind::Activate:
        o["type"] = "activate";
        o["row_id"] = intsToJson(mi.row_id);
        o["row_y"] = doublesToJson(mi.row_y);
        o["col_id"] = intsToJson(mi.col_id);
        o["col_x"] = doublesToJson(mi.col_x);
        break;
      case MachineKind::Deactivate:
        o["type"] = "deactivate";
        o["row_id"] = intsToJson(mi.row_id);
        o["col_id"] = intsToJson(mi.col_id);
        break;
      case MachineKind::Move:
        o["type"] = "move";
        o["row_id"] = intsToJson(mi.row_id);
        o["row_y_begin"] = doublesToJson(mi.row_y_begin);
        o["row_y_end"] = doublesToJson(mi.row_y_end);
        o["col_id"] = intsToJson(mi.col_id);
        o["col_x_begin"] = doublesToJson(mi.col_x_begin);
        o["col_x_end"] = doublesToJson(mi.col_x_end);
        break;
    }
    o["duration"] = mi.duration_us;
    return o;
}

} // namespace

json::Value
zairInstrToJson(const ZairInstr &instr)
{
    json::Object o;
    switch (instr.kind) {
      case ZairKind::Init:
        o["type"] = "init";
        o["init_locs"] = qlocsToJson(instr.init_locs);
        break;
      case ZairKind::OneQGate:
        o["type"] = "1qGate";
        o["unitary"] = json::Array{instr.unitary.theta,
                                   instr.unitary.phi,
                                   instr.unitary.lambda};
        o["locs"] = qlocsToJson(instr.locs);
        break;
      case ZairKind::Rydberg:
        o["type"] = "rydberg";
        o["zone_id"] = instr.zone_id;
        // Not part of the paper's minimal schema, but kept so a loaded
        // program can be re-evaluated by the fidelity model.
        o["gate_qubits"] = intsToJson(instr.gate_qubits);
        break;
      case ZairKind::RearrangeJob: {
        o["type"] = "rearrangeJob";
        o["aod_id"] = instr.aod_id;
        o["begin_locs"] = qlocsToJson(instr.begin_locs);
        o["end_locs"] = qlocsToJson(instr.end_locs);
        json::Array insts;
        for (const MachineInstr &mi : instr.insts)
            insts.push_back(machineToJson(mi));
        o["insts"] = std::move(insts);
        break;
      }
    }
    o["begin_time"] = instr.begin_time_us;
    o["end_time"] = instr.end_time_us;
    return o;
}

json::Value
zairProgramToJson(const ZairProgram &program)
{
    json::Object o;
    o["circuit"] = program.circuit_name;
    o["architecture"] = program.arch_name;
    o["num_qubits"] = program.num_qubits;
    json::Array instrs;
    for (const ZairInstr &in : program.instrs)
        instrs.push_back(zairInstrToJson(in));
    o["instructions"] = std::move(instrs);
    return o;
}

void
saveZairProgram(const std::string &path, const ZairProgram &program)
{
    json::writeFile(path, zairProgramToJson(program));
}

namespace
{

QLoc
qlocFromJson(const json::Value &v)
{
    QLoc loc;
    loc.q = static_cast<int>(v.at(0).asInt());
    loc.a = static_cast<int>(v.at(1).asInt());
    loc.r = static_cast<int>(v.at(2).asInt());
    loc.c = static_cast<int>(v.at(3).asInt());
    return loc;
}

std::vector<QLoc>
qlocsFromJson(const json::Value &v)
{
    std::vector<QLoc> out;
    for (const json::Value &l : v.asArray())
        out.push_back(qlocFromJson(l));
    return out;
}

std::vector<int>
intsFromJson(const json::Value &v)
{
    std::vector<int> out;
    for (const json::Value &x : v.asArray())
        out.push_back(static_cast<int>(x.asInt()));
    return out;
}

std::vector<double>
doublesFromJson(const json::Value &v)
{
    std::vector<double> out;
    for (const json::Value &x : v.asArray())
        out.push_back(x.asDouble());
    return out;
}

MachineInstr
machineFromJson(const json::Value &v)
{
    MachineInstr mi;
    const std::string &type = v.at("type").asString();
    if (type == "activate") {
        mi.kind = MachineKind::Activate;
        mi.row_id = intsFromJson(v.at("row_id"));
        mi.row_y = doublesFromJson(v.at("row_y"));
        mi.col_id = intsFromJson(v.at("col_id"));
        mi.col_x = doublesFromJson(v.at("col_x"));
    } else if (type == "deactivate") {
        mi.kind = MachineKind::Deactivate;
        mi.row_id = intsFromJson(v.at("row_id"));
        mi.col_id = intsFromJson(v.at("col_id"));
    } else if (type == "move") {
        mi.kind = MachineKind::Move;
        mi.row_id = intsFromJson(v.at("row_id"));
        mi.row_y_begin = doublesFromJson(v.at("row_y_begin"));
        mi.row_y_end = doublesFromJson(v.at("row_y_end"));
        mi.col_id = intsFromJson(v.at("col_id"));
        mi.col_x_begin = doublesFromJson(v.at("col_x_begin"));
        mi.col_x_end = doublesFromJson(v.at("col_x_end"));
    } else {
        fatal("zair: unknown machine instruction type '" + type + "'");
    }
    mi.duration_us = v.numberOr("duration", 0.0);
    return mi;
}

} // namespace

ZairInstr
zairInstrFromJson(const json::Value &v)
{
    ZairInstr in;
    const std::string &type = v.at("type").asString();
    if (type == "init") {
        in.kind = ZairKind::Init;
        in.init_locs = qlocsFromJson(v.at("init_locs"));
    } else if (type == "1qGate") {
        in.kind = ZairKind::OneQGate;
        const json::Value &u = v.at("unitary");
        in.unitary = {u.at(0).asDouble(), u.at(1).asDouble(),
                      u.at(2).asDouble()};
        in.locs = qlocsFromJson(v.at("locs"));
    } else if (type == "rydberg") {
        in.kind = ZairKind::Rydberg;
        in.zone_id = static_cast<int>(v.at("zone_id").asInt());
        if (v.contains("gate_qubits"))
            in.gate_qubits = intsFromJson(v.at("gate_qubits"));
    } else if (type == "rearrangeJob") {
        in.kind = ZairKind::RearrangeJob;
        in.aod_id = static_cast<int>(v.at("aod_id").asInt());
        in.begin_locs = qlocsFromJson(v.at("begin_locs"));
        in.end_locs = qlocsFromJson(v.at("end_locs"));
        for (const json::Value &mi : v.at("insts").asArray())
            in.insts.push_back(machineFromJson(mi));
    } else {
        fatal("zair: unknown instruction type '" + type + "'");
    }
    in.begin_time_us = v.numberOr("begin_time", 0.0);
    in.end_time_us = v.numberOr("end_time", 0.0);
    return in;
}

ZairProgram
zairProgramFromJson(const json::Value &v)
{
    ZairProgram program;
    program.circuit_name = v.contains("circuit")
                               ? v.at("circuit").asString()
                               : "";
    program.arch_name = v.contains("architecture")
                            ? v.at("architecture").asString()
                            : "";
    program.num_qubits = static_cast<int>(v.at("num_qubits").asInt());
    for (const json::Value &iv : v.at("instructions").asArray())
        program.instrs.push_back(zairInstrFromJson(iv));
    return program;
}

ZairProgram
loadZairProgram(const std::string &path)
{
    return zairProgramFromJson(json::parseFile(path));
}

// ------------------------------------------------------ streaming writer

namespace
{

/**
 * Re-indent a standalone dump() so it reads as if emitted at @p depth
 * inside an enclosing document. json::Value indentation is linear in
 * depth and escaped strings never contain raw newlines, so inserting
 * indent*depth spaces after every newline reproduces the nested bytes
 * exactly.
 */
void
writeReindented(std::ostream &out, const std::string &dumped, int indent,
                int depth)
{
    if (indent <= 0) {
        out << dumped;
        return;
    }
    const std::string pad(static_cast<std::size_t>(indent) *
                              static_cast<std::size_t>(depth),
                          ' ');
    std::size_t start = 0;
    for (;;) {
        const std::size_t nl = dumped.find('\n', start);
        if (nl == std::string::npos) {
            out.write(dumped.data() + start,
                      static_cast<std::streamsize>(dumped.size() -
                                                   start));
            return;
        }
        out.write(dumped.data() + start,
                  static_cast<std::streamsize>(nl + 1 - start));
        out << pad;
        start = nl + 1;
    }
}

} // namespace

ZairStreamWriter::ZairStreamWriter(std::ostream &out, int indent)
    : out_(out), indent_(indent)
{
    if (indent_ < 0)
        indent_ = 0;
}

void
ZairStreamWriter::begin(const std::string &circuit_name,
                        const std::string &arch_name, int num_qubits)
{
    if (begun_)
        panic("ZairStreamWriter: begin() called twice");
    begun_ = true;
    num_qubits_ = num_qubits;

    // Mirror zairProgramToJson(): json::Object orders its keys
    // lexicographically, so the header is architecture, circuit,
    // instructions (streamed), with num_qubits after the array.
    const char *colon = indent_ > 0 ? ": " : ":";
    const auto member = [&](const char *key) {
        if (indent_ > 0)
            out_ << '\n' << std::string(
                static_cast<std::size_t>(indent_), ' ');
        out_ << '"' << key << '"' << colon;
    };
    out_ << '{';
    member("architecture");
    out_ << json::Value(arch_name).dump();
    out_ << ',';
    member("circuit");
    out_ << json::Value(circuit_name).dump();
    out_ << ',';
    member("instructions");
    // '[' is written lazily by add()/end() so an empty program emits
    // the same "[]" a DOM dump would.
}

void
ZairStreamWriter::add(const ZairInstr &instr)
{
    if (!begun_ || ended_)
        panic("ZairStreamWriter: add() outside begin()/end()");
    if (count_ == 0)
        out_ << '[';
    else
        out_ << ',';
    if (indent_ > 0)
        out_ << '\n' << std::string(
            static_cast<std::size_t>(indent_) * 2, ' ');
    writeReindented(out_, zairInstrToJson(instr).dump(indent_), indent_,
                    2);
    ++count_;
}

void
ZairStreamWriter::end()
{
    if (!begun_ || ended_)
        panic("ZairStreamWriter: end() outside begin()");
    ended_ = true;
    if (count_ == 0) {
        out_ << "[]";
    } else {
        if (indent_ > 0)
            out_ << '\n' << std::string(
                static_cast<std::size_t>(indent_), ' ');
        out_ << ']';
    }
    out_ << ',';
    if (indent_ > 0)
        out_ << '\n' << std::string(
            static_cast<std::size_t>(indent_), ' ');
    out_ << "\"num_qubits\"" << (indent_ > 0 ? ": " : ":")
         << json::Value(num_qubits_).dump();
    if (indent_ > 0)
        out_ << '\n';
    out_ << '}';
}

void
streamZairProgram(std::ostream &out, const ZairProgram &program,
                  int indent)
{
    ZairStreamWriter w(out, indent);
    w.begin(program.circuit_name, program.arch_name,
            program.num_qubits);
    for (const ZairInstr &in : program.instrs)
        w.add(in);
    w.end();
}

ZairNameSpan
zairCompactNameSpan(const std::string &circuit_name,
                    const std::string &arch_name)
{
    // {"architecture":<arch>,"circuit":<name>  — 16 and 11 bytes of
    // fixed syntax around the architecture-name literal.
    ZairNameSpan span;
    span.offset = 16 + json::Value(arch_name).dump().size() + 11;
    span.length = json::Value(circuit_name).dump().size();
    return span;
}

} // namespace zac
