/**
 * @file
 * A complete ZAIR program plus summary statistics.
 */

#ifndef ZAC_ZAIR_PROGRAM_HPP
#define ZAC_ZAIR_PROGRAM_HPP

#include <string>
#include <vector>

#include "zair/instruction.hpp"

namespace zac
{

/** Aggregate statistics of a ZAIR program (Sec. IX's metrics). */
struct ZairStats
{
    int num_zair_instrs = 0;      ///< 1qGate + rydberg + rearrangeJob
    int num_machine_instrs = 0;   ///< 1qGate + rydberg + job sub-instrs
    int num_1q_gates = 0;         ///< total U3 applications
    int num_2q_gates = 0;         ///< total CZ pairs across pulses
    int num_rydberg_stages = 0;
    int num_rearrange_jobs = 0;
    int num_atom_transfers = 0;   ///< 2 per qubit per job
    double total_move_distance_um = 0.0;
    double makespan_us = 0.0;
};

/** The compiled output: timed ZAIR instructions over an architecture. */
class ZairProgram
{
  public:
    std::string circuit_name;
    std::string arch_name;
    int num_qubits = 0;
    std::vector<ZairInstr> instrs;

    /** Compute summary statistics over the instruction list. */
    ZairStats stats() const;

    /** Total wall-clock span (max end time), us. */
    double makespanUs() const;

    /**
     * Validate structural invariants: init first, timings ordered,
     * rearrange jobs have matching begin/end shapes. Throws PanicError.
     */
    void checkInvariants() const;
};

/**
 * Incremental form of ZairProgram::stats(): feed() each instruction as
 * it is produced, finish() yields the same ZairStats the DOM method
 * computes. ZairProgram::stats() is implemented on top of this, so the
 * streamed and DOM paths agree by construction.
 */
class ZairStatsAccumulator
{
  public:
    void feed(const ZairInstr &in);
    ZairStats finish() const;

  private:
    ZairStats stats_;
    double makespan_us_ = 0.0;
};

/**
 * Streaming counterpart of ZairProgram::checkInvariants(): per-instr
 * structural checks with the same panic messages, usable before the
 * full program exists. Needs num_qubits up front; finish() validates
 * the whole-program conditions (non-empty, init first and only once).
 */
class ZairInvariantChecker
{
  public:
    explicit ZairInvariantChecker(int num_qubits)
        : num_qubits_(num_qubits)
    {
    }

    void feed(const ZairInstr &in);
    void finish() const;

  private:
    void checkQubit(int q) const;

    int num_qubits_ = 0;
    std::size_t count_ = 0;
    bool saw_init_ = false;
};

} // namespace zac

#endif // ZAC_ZAIR_PROGRAM_HPP
