/**
 * @file
 * JSON serialization of ZAIR programs in the paper's artifact format
 * (Fig. 17 / Fig. 19).
 */

#ifndef ZAC_ZAIR_SERIALIZE_HPP
#define ZAC_ZAIR_SERIALIZE_HPP

#include <string>

#include "common/json.hpp"
#include "zair/program.hpp"

namespace zac
{

/** Serialize one instruction to its JSON object form. */
json::Value zairInstrToJson(const ZairInstr &instr);

/** Serialize a whole program (array of instruction objects + header). */
json::Value zairProgramToJson(const ZairProgram &program);

/** Write a program to @p path as pretty-printed JSON. */
void saveZairProgram(const std::string &path, const ZairProgram &program);

/** Parse one instruction from its JSON object form. */
ZairInstr zairInstrFromJson(const json::Value &v);

/** Parse a whole program (inverse of zairProgramToJson). */
ZairProgram zairProgramFromJson(const json::Value &v);

/** Load a program from a JSON file written by saveZairProgram. */
ZairProgram loadZairProgram(const std::string &path);

} // namespace zac

#endif // ZAC_ZAIR_SERIALIZE_HPP
