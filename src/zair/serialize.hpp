/**
 * @file
 * JSON serialization of ZAIR programs in the paper's artifact format
 * (Fig. 17 / Fig. 19).
 */

#ifndef ZAC_ZAIR_SERIALIZE_HPP
#define ZAC_ZAIR_SERIALIZE_HPP

#include <ostream>
#include <string>

#include "common/json.hpp"
#include "zair/program.hpp"

namespace zac
{

/** Serialize one instruction to its JSON object form. */
json::Value zairInstrToJson(const ZairInstr &instr);

/** Serialize a whole program (array of instruction objects + header). */
json::Value zairProgramToJson(const ZairProgram &program);

/** Write a program to @p path as pretty-printed JSON. */
void saveZairProgram(const std::string &path, const ZairProgram &program);

/** Parse one instruction from its JSON object form. */
ZairInstr zairInstrFromJson(const json::Value &v);

/** Parse a whole program (inverse of zairProgramToJson). */
ZairProgram zairProgramFromJson(const json::Value &v);

/** Load a program from a JSON file written by saveZairProgram. */
ZairProgram loadZairProgram(const std::string &path);

/**
 * Incremental ZAIR/JSON writer: streams a program to an std::ostream one
 * instruction at a time, so a compile-service worker can emit output as
 * instructions are produced instead of buffering the whole program DOM.
 *
 * The byte stream is exactly what zairProgramToJson(p).dump(indent)
 * would produce for the same program — verified by unit test — so
 * streamed and buffered outputs can be compared bit-for-bit.
 *
 * Usage: begin(...); add(instr) for each instruction; end().
 */
class ZairStreamWriter
{
  public:
    /**
     * @param out    destination stream (kept by reference).
     * @param indent pretty-print width; 0 writes one compact line.
     */
    explicit ZairStreamWriter(std::ostream &out, int indent = 2);

    /** Write the program header and open the instruction array. */
    void begin(const std::string &circuit_name,
               const std::string &arch_name, int num_qubits);

    /** Append one instruction. */
    void add(const ZairInstr &instr);

    /** Close the instruction array and the document. */
    void end();

  private:
    std::ostream &out_;
    int indent_;
    int num_qubits_ = 0;
    bool begun_ = false;
    bool ended_ = false;
    std::size_t count_ = 0;
};

/** Stream a whole program through a ZairStreamWriter. */
void streamZairProgram(std::ostream &out, const ZairProgram &program,
                       int indent = 2);

/** Byte range of the circuit-name JSON string inside a compact dump. */
struct ZairNameSpan
{
    std::size_t offset = 0; ///< first byte of the quoted name literal
    std::size_t length = 0; ///< bytes of the quoted name literal
};

/**
 * Locate the circuit-name string literal (including quotes) inside the
 * compact (indent 0) byte stream ZairStreamWriter produces. The layout
 * is fixed — {"architecture":<a>,"circuit":<c>,... — so the span is
 * computed arithmetically; callers can splice a replacement name into
 * a stored compact dump without reparsing it.
 */
ZairNameSpan zairCompactNameSpan(const std::string &circuit_name,
                                 const std::string &arch_name);

} // namespace zac

#endif // ZAC_ZAIR_SERIALIZE_HPP
