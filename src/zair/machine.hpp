/**
 * @file
 * Lowering of rearrangement jobs to machine-level AOD instructions.
 *
 * Follows the row-by-row pickup strategy of OLSQ-DPQA that the paper
 * adopts (Sec. IX, Fig. 18): AOD rows are activated one at a time, with
 * a small parking move between activations when the column pattern
 * changes, so qubits that are not part of the job are never captured.
 */

#ifndef ZAC_ZAIR_MACHINE_HPP
#define ZAC_ZAIR_MACHINE_HPP

#include "arch/spec.hpp"
#include "zair/instruction.hpp"

namespace zac
{

/** Durations of the three phases of a rearrangement job, in us. */
struct JobPhases
{
    double pickup_us = 0.0;
    double move_us = 0.0;
    double drop_us = 0.0;

    double total() const { return pickup_us + move_us + drop_us; }
};

/**
 * Check that a set of movements can be executed by one AOD: begin rows /
 * columns map to end rows / columns preserving strict order, and equal
 * coordinates stay equal (the AOD non-crossing constraint).
 *
 * @param begin,end matching lists of positions.
 * @return true when compatible.
 */
bool movementsAodCompatible(const std::vector<Point> &begin,
                            const std::vector<Point> &end);

/**
 * Populate @p job.insts with machine-level instructions and set its
 * pickup_done_us / move_done_us phase markers.
 *
 * @param job  a RearrangeJob with begin_locs/end_locs filled in.
 * @param arch the architecture (for trap positions and AOD limits).
 * @return the phase durations.
 * @throws zac::FatalError if the job violates AOD constraints.
 */
JobPhases lowerRearrangeJob(ZairInstr &job, const Architecture &arch);

} // namespace zac

#endif // ZAC_ZAIR_MACHINE_HPP
