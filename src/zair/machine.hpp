/**
 * @file
 * Lowering of rearrangement jobs to machine-level AOD instructions.
 *
 * Follows the row-by-row pickup strategy of OLSQ-DPQA that the paper
 * adopts (Sec. IX, Fig. 18): AOD rows are activated one at a time, with
 * a small parking move between activations when the column pattern
 * changes, so qubits that are not part of the job are never captured.
 */

#ifndef ZAC_ZAIR_MACHINE_HPP
#define ZAC_ZAIR_MACHINE_HPP

#include <cmath>

#include "arch/spec.hpp"
#include "zair/instruction.hpp"

namespace zac
{

/** Durations of the three phases of a rearrangement job, in us. */
struct JobPhases
{
    double pickup_us = 0.0;
    double move_us = 0.0;
    double drop_us = 0.0;

    double total() const { return pickup_us + move_us + drop_us; }
};

/** Tolerance for coincident trap coordinates in AOD checks (um). */
inline constexpr double kAodCoordTolUm = 1e-6;

/**
 * The pairwise AOD ordering constraint: equal begin rows/columns must
 * stay equal, distinct ones must keep their strict order (no crossing
 * or merging). movementsAodCompatible is the conjunction of this
 * predicate over all pairs; the job splitter negates it per pair to
 * build the movement conflict graph.
 */
inline bool
movementPairAodCompatible(const Point &begin_i, const Point &end_i,
                          const Point &begin_j, const Point &end_j)
{
    const double bx = begin_i.x - begin_j.x;
    const double ex = end_i.x - end_j.x;
    if (std::abs(bx) < kAodCoordTolUm) {
        if (std::abs(ex) >= kAodCoordTolUm)
            return false;
    } else if (bx * ex <= 0.0 || std::abs(ex) < kAodCoordTolUm) {
        return false;
    }
    const double by = begin_i.y - begin_j.y;
    const double ey = end_i.y - end_j.y;
    if (std::abs(by) < kAodCoordTolUm) {
        if (std::abs(ey) >= kAodCoordTolUm)
            return false;
    } else if (by * ey <= 0.0 || std::abs(ey) < kAodCoordTolUm) {
        return false;
    }
    return true;
}

/**
 * Check that a set of movements can be executed by one AOD: begin rows /
 * columns map to end rows / columns preserving strict order, and equal
 * coordinates stay equal (the AOD non-crossing constraint).
 *
 * @param begin,end matching lists of positions.
 * @return true when compatible.
 */
bool movementsAodCompatible(const std::vector<Point> &begin,
                            const std::vector<Point> &end);

/**
 * Reusable buffers for lowerRearrangeJob. One instance per scheduler
 * keeps the lowering allocation-free across jobs (only the emitted
 * MachineInstrs, which outlive the call, still allocate).
 */
struct RearrangeLowerScratch
{
    std::vector<Point> begin;
    std::vector<Point> end;
    std::vector<double> xs;
    std::vector<double> ys;
    std::vector<double> col_axis;
    std::vector<double> row_axis;
    std::vector<double> row_end;
    std::vector<double> col_end;
    std::vector<int> col_of;
};

/**
 * Populate @p job.insts with machine-level instructions and set its
 * pickup_done_us / move_done_us phase markers.
 *
 * @param job  a RearrangeJob with begin_locs/end_locs filled in.
 * @param arch the architecture (for trap positions and AOD limits).
 * @return the phase durations.
 * @throws zac::FatalError if the job violates AOD constraints.
 */
JobPhases lowerRearrangeJob(ZairInstr &job, const Architecture &arch);

/** As above with caller-owned scratch (the scheduler hot path). */
JobPhases lowerRearrangeJob(ZairInstr &job, const Architecture &arch,
                            RearrangeLowerScratch &scratch);

/**
 * As above, with @p scratch.begin / @p scratch.end already holding the
 * begin/end position of every movement of the job (one entry per
 * begin_locs element, same order). Skips the per-loc position
 * resolution so callers that already carry flat TrapIds resolve each
 * position exactly once.
 */
JobPhases lowerRearrangeJobPrepared(ZairInstr &job,
                                    const Architecture &arch,
                                    RearrangeLowerScratch &scratch);

} // namespace zac

#endif // ZAC_ZAIR_MACHINE_HPP
