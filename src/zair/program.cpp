#include "zair/program.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace zac
{

void
ZairStatsAccumulator::feed(const ZairInstr &in)
{
    ZairStats &s = stats_;
    switch (in.kind) {
      case ZairKind::Init:
        break;
      case ZairKind::OneQGate:
        ++s.num_zair_instrs;
        ++s.num_machine_instrs;
        s.num_1q_gates += static_cast<int>(in.locs.size());
        break;
      case ZairKind::Rydberg:
        ++s.num_zair_instrs;
        ++s.num_machine_instrs;
        ++s.num_rydberg_stages;
        s.num_2q_gates +=
            static_cast<int>(in.gate_qubits.size()) / 2;
        break;
      case ZairKind::RearrangeJob: {
        ++s.num_zair_instrs;
        ++s.num_rearrange_jobs;
        s.num_machine_instrs +=
            static_cast<int>(in.insts.size());
        s.num_atom_transfers +=
            2 * static_cast<int>(in.begin_locs.size());
        for (const MachineInstr &mi : in.insts) {
            if (mi.kind != MachineKind::Move)
                continue;
            double max_d = 0.0;
            for (std::size_t i = 0; i < mi.row_id.size(); ++i)
                max_d = std::max(max_d,
                                 std::abs(mi.row_y_end[i] -
                                          mi.row_y_begin[i]));
            for (std::size_t i = 0; i < mi.col_id.size(); ++i)
                max_d = std::max(max_d,
                                 std::abs(mi.col_x_end[i] -
                                          mi.col_x_begin[i]));
            s.total_move_distance_um += max_d;
        }
        break;
      }
    }
    makespan_us_ = std::max(makespan_us_, in.end_time_us);
}

ZairStats
ZairStatsAccumulator::finish() const
{
    ZairStats s = stats_;
    s.makespan_us = makespan_us_;
    return s;
}

ZairStats
ZairProgram::stats() const
{
    ZairStatsAccumulator acc;
    for (const ZairInstr &in : instrs)
        acc.feed(in);
    return acc.finish();
}

double
ZairProgram::makespanUs() const
{
    double end = 0.0;
    for (const ZairInstr &in : instrs)
        end = std::max(end, in.end_time_us);
    return end;
}

void
ZairProgram::checkInvariants() const
{
    if (instrs.empty())
        panic("zair: empty program");
    if (instrs.front().kind != ZairKind::Init)
        panic("zair: program must start with init");
    for (std::size_t i = 1; i < instrs.size(); ++i)
        if (instrs[i].kind == ZairKind::Init)
            panic("zair: init must appear exactly once");
    auto check_qubit = [this](int q) {
        if (q < 0 || q >= num_qubits)
            panic("zair: qubit out of range");
    };
    for (const ZairInstr &in : instrs) {
        if (in.begin_time_us < -1e-9)
            panic("zair: instruction begins before time zero");
        if (in.end_time_us + 1e-9 < in.begin_time_us)
            panic("zair: instruction ends before it begins");
        for (const QLoc &l : in.init_locs)
            check_qubit(l.q);
        for (const QLoc &l : in.locs)
            check_qubit(l.q);
        for (int q : in.gate_qubits)
            check_qubit(q);
        if (in.kind == ZairKind::RearrangeJob) {
            if (in.begin_locs.size() != in.end_locs.size())
                panic("zair: rearrange job begin/end size mismatch");
            for (std::size_t i = 0; i < in.begin_locs.size(); ++i) {
                check_qubit(in.begin_locs[i].q);
                if (in.begin_locs[i].q != in.end_locs[i].q)
                    panic("zair: rearrange job permutes qubit order");
            }
        }
    }
}

void
ZairInvariantChecker::checkQubit(int q) const
{
    if (q < 0 || q >= num_qubits_)
        panic("zair: qubit out of range");
}

void
ZairInvariantChecker::feed(const ZairInstr &in)
{
    if (count_ == 0) {
        if (in.kind != ZairKind::Init)
            panic("zair: program must start with init");
        saw_init_ = true;
    } else if (in.kind == ZairKind::Init) {
        panic("zair: init must appear exactly once");
    }
    ++count_;
    if (in.begin_time_us < -1e-9)
        panic("zair: instruction begins before time zero");
    if (in.end_time_us + 1e-9 < in.begin_time_us)
        panic("zair: instruction ends before it begins");
    for (const QLoc &l : in.init_locs)
        checkQubit(l.q);
    for (const QLoc &l : in.locs)
        checkQubit(l.q);
    for (int q : in.gate_qubits)
        checkQubit(q);
    if (in.kind == ZairKind::RearrangeJob) {
        if (in.begin_locs.size() != in.end_locs.size())
            panic("zair: rearrange job begin/end size mismatch");
        for (std::size_t i = 0; i < in.begin_locs.size(); ++i) {
            checkQubit(in.begin_locs[i].q);
            if (in.begin_locs[i].q != in.end_locs[i].q)
                panic("zair: rearrange job permutes qubit order");
        }
    }
}

void
ZairInvariantChecker::finish() const
{
    if (count_ == 0)
        panic("zair: empty program");
    if (!saw_init_)
        panic("zair: program must start with init");
}

} // namespace zac
