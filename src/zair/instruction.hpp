/**
 * @file
 * ZAIR: the zoned-architecture intermediate representation (paper
 * Sec. IX, Fig. 17).
 *
 * Four instruction kinds: init, 1qGate, rydberg, and rearrangeJob. A
 * rearrangement job is the unit of AOD work: it picks up a set of
 * qubits, moves them in parallel, and drops them off, and is lowered to
 * machine-level activate / move / deactivate instructions.
 */

#ifndef ZAC_ZAIR_INSTRUCTION_HPP
#define ZAC_ZAIR_INSTRUCTION_HPP

#include <string>
#include <vector>

#include "arch/spec.hpp"
#include "transpile/u2_math.hpp"

namespace zac
{

/**
 * A qubit location: qubit @c q sits at row @c r, column @c c of SLM
 * array @c a (the paper's 4-tuple (q, a, r, c)).
 */
struct QLoc
{
    int q = -1;
    int a = -1;
    int r = 0;
    int c = 0;

    TrapRef trap() const { return {a, r, c}; }
    friend bool operator==(const QLoc &, const QLoc &) = default;
};

/** Machine-level AOD instruction kinds (paper Fig. 17b). */
enum class MachineKind { Activate, Deactivate, Move };

/** One machine-level AOD instruction inside a rearrangement job. */
struct MachineInstr
{
    MachineKind kind = MachineKind::Activate;
    std::vector<int> row_id;
    std::vector<int> col_id;
    /** Activate: trap row y / col x the AOD lines switch on at. */
    std::vector<double> row_y;
    std::vector<double> col_x;
    /** Move: per-line begin/end coordinates. */
    std::vector<double> row_y_begin, row_y_end;
    std::vector<double> col_x_begin, col_x_end;
    /** Duration of this machine instruction in us. */
    double duration_us = 0.0;
};

/** Kind of a ZAIR instruction. */
enum class ZairKind { Init, OneQGate, Rydberg, RearrangeJob };

/** One ZAIR instruction (tagged by kind; unused fields stay empty). */
struct ZairInstr
{
    ZairKind kind = ZairKind::Init;

    // --- Init ---
    std::vector<QLoc> init_locs;

    // --- OneQGate: `unitary` applied to each of `locs` ---
    U3Angles unitary;
    std::vector<QLoc> locs;

    // --- Rydberg ---
    int zone_id = 0;
    /** Qubits that participate in a 2Q gate during this pulse. */
    std::vector<int> gate_qubits;

    // --- RearrangeJob ---
    int aod_id = 0;
    std::vector<QLoc> begin_locs;
    std::vector<QLoc> end_locs;
    std::vector<MachineInstr> insts;
    /** Relative end of the pickup phase within the job (us). */
    double pickup_done_us = 0.0;
    /** Relative end of the move phase within the job (us). */
    double move_done_us = 0.0;

    // --- timing, filled by the scheduler ---
    double begin_time_us = 0.0;
    double end_time_us = 0.0;

    double durationUs() const { return end_time_us - begin_time_us; }
};

} // namespace zac

#endif // ZAC_ZAIR_INSTRUCTION_HPP
