#include "zair/machine.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace zac
{

namespace
{

/**
 * Distinct coordinates, ascending. Exact-equality dedup, matching the
 * std::map<double, int> the lowering used before the flat-axis rewrite
 * (trap coordinates are computed by identical arithmetic, so equal
 * coordinates are bitwise equal).
 */
void
denseAxis(const std::vector<double> &coords, std::vector<double> &axis)
{
    axis.assign(coords.begin(), coords.end());
    std::sort(axis.begin(), axis.end());
    axis.erase(std::unique(axis.begin(), axis.end()), axis.end());
}

/** Dense line index of @p c within a sorted distinct @p axis. */
int
axisIndex(const std::vector<double> &axis, double c)
{
    return static_cast<int>(
        std::lower_bound(axis.begin(), axis.end(), c) - axis.begin());
}

} // namespace

bool
movementsAodCompatible(const std::vector<Point> &begin,
                       const std::vector<Point> &end)
{
    if (begin.size() != end.size())
        panic("movementsAodCompatible: size mismatch");
    const std::size_t n = begin.size();
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            if (!movementPairAodCompatible(begin[i], end[i], begin[j],
                                           end[j]))
                return false;
    return true;
}

JobPhases
lowerRearrangeJob(ZairInstr &job, const Architecture &arch)
{
    RearrangeLowerScratch scratch;
    return lowerRearrangeJob(job, arch, scratch);
}

JobPhases
lowerRearrangeJob(ZairInstr &job, const Architecture &arch,
                  RearrangeLowerScratch &scratch)
{
    if (job.kind != ZairKind::RearrangeJob)
        panic("lowerRearrangeJob: not a rearrange job");
    if (job.begin_locs.size() != job.end_locs.size())
        panic("lowerRearrangeJob: begin/end size mismatch");
    const std::size_t n = job.begin_locs.size();
    scratch.begin.resize(n);
    scratch.end.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        scratch.begin[i] = arch.trapPosition(job.begin_locs[i].trap());
        scratch.end[i] = arch.trapPosition(job.end_locs[i].trap());
    }
    return lowerRearrangeJobPrepared(job, arch, scratch);
}

JobPhases
lowerRearrangeJobPrepared(ZairInstr &job, const Architecture &arch,
                          RearrangeLowerScratch &scratch)
{
    if (job.kind != ZairKind::RearrangeJob)
        panic("lowerRearrangeJob: not a rearrange job");
    const std::size_t n = job.begin_locs.size();
    if (n == 0)
        fatal("lowerRearrangeJob: empty job");
    if (job.aod_id < 0 ||
        job.aod_id >= static_cast<int>(arch.aods().size()))
        fatal("lowerRearrangeJob: invalid AOD id");
    if (scratch.begin.size() != n || scratch.end.size() != n)
        panic("lowerRearrangeJob: prepared positions size mismatch");
    const AodSpec &aod =
        arch.aods()[static_cast<std::size_t>(job.aod_id)];
    const NaHardwareParams &hw = arch.params();

    std::vector<Point> &begin = scratch.begin;
    std::vector<Point> &end = scratch.end;
    if (!movementsAodCompatible(begin, end))
        fatal("lowerRearrangeJob: movements violate AOD ordering "
              "constraints; split into separate jobs");

    // Dense AOD line indices from distinct begin coordinates: sorted
    // flat axes instead of ordered maps (identical index assignment —
    // ascending coordinate order).
    std::vector<double> &xs = scratch.xs;
    std::vector<double> &ys = scratch.ys;
    xs.resize(n);
    ys.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        xs[i] = begin[i].x;
        ys[i] = begin[i].y;
    }
    std::vector<double> &col_axis = scratch.col_axis;
    std::vector<double> &row_axis = scratch.row_axis;
    denseAxis(xs, col_axis);
    denseAxis(ys, row_axis);
    const int num_rows = static_cast<int>(row_axis.size());
    const int num_cols = static_cast<int>(col_axis.size());
    if (num_rows > aod.max_rows || num_cols > aod.max_cols)
        fatal("lowerRearrangeJob: job needs " + std::to_string(num_rows) +
              "x" + std::to_string(num_cols) + " AOD lines, AOD has " +
              std::to_string(aod.max_rows) + "x" +
              std::to_string(aod.max_cols));

    // Begin -> end coordinate per line (well-defined by compatibility),
    // plus each movement's column line, resolved once.
    std::vector<double> &row_end = scratch.row_end;
    std::vector<double> &col_end = scratch.col_end;
    std::vector<int> &col_of = scratch.col_of;
    row_end.resize(static_cast<std::size_t>(num_rows));
    col_end.resize(static_cast<std::size_t>(num_cols));
    col_of.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        row_end[static_cast<std::size_t>(axisIndex(row_axis, ys[i]))] =
            end[i].y;
        col_of[i] = axisIndex(col_axis, xs[i]);
        col_end[static_cast<std::size_t>(col_of[i])] = end[i].x;
    }

    job.insts.clear();
    job.insts.reserve(2 * static_cast<std::size_t>(num_rows) + 1);
    JobPhases phases;
    const double parking_dist = aod.min_sep / 2.0;
    const double parking_us = moveDurationUs(parking_dist);

    // ---- pickup: activate row by row (ascending y), parking between.
    for (int row_id = 0; row_id < num_rows; ++row_id) {
        const double row_y = row_axis[static_cast<std::size_t>(row_id)];
        if (row_id > 0) {
            // Parking micro-move so already-held qubits clear the next
            // row's trap line (Fig. 18c).
            MachineInstr park;
            park.kind = MachineKind::Move;
            park.duration_us = parking_us;
            job.insts.push_back(std::move(park));
            phases.pickup_us += parking_us;
        }
        MachineInstr act;
        act.kind = MachineKind::Activate;
        act.row_id = {row_id};
        act.row_y = {row_y};
        for (std::size_t i = 0; i < n; ++i) {
            if (std::abs(ys[i] - row_y) < kAodCoordTolUm) {
                act.col_id.push_back(col_of[i]);
                act.col_x.push_back(xs[i]);
            }
        }
        act.duration_us = hw.t_transfer_us;
        job.insts.push_back(std::move(act));
        phases.pickup_us += hw.t_transfer_us;
    }

    // ---- move: one parallel translation of all lines.
    MachineInstr move;
    move.kind = MachineKind::Move;
    move.row_id.reserve(static_cast<std::size_t>(num_rows));
    move.row_y_begin.reserve(static_cast<std::size_t>(num_rows));
    move.row_y_end.reserve(static_cast<std::size_t>(num_rows));
    move.col_id.reserve(static_cast<std::size_t>(num_cols));
    move.col_x_begin.reserve(static_cast<std::size_t>(num_cols));
    move.col_x_end.reserve(static_cast<std::size_t>(num_cols));
    for (int row_id = 0; row_id < num_rows; ++row_id) {
        move.row_id.push_back(row_id);
        move.row_y_begin.push_back(
            row_axis[static_cast<std::size_t>(row_id)]);
        move.row_y_end.push_back(
            row_end[static_cast<std::size_t>(row_id)]);
    }
    for (int col_id = 0; col_id < num_cols; ++col_id) {
        move.col_id.push_back(col_id);
        move.col_x_begin.push_back(
            col_axis[static_cast<std::size_t>(col_id)]);
        move.col_x_end.push_back(
            col_end[static_cast<std::size_t>(col_id)]);
    }
    double max_disp = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        max_disp = std::max(max_disp, distance(begin[i], end[i]));
    move.duration_us = moveDurationUs(max_disp);
    phases.move_us = move.duration_us;
    job.insts.push_back(std::move(move));

    // ---- drop: one deactivate transfers every qubit to its SLM trap.
    MachineInstr deact;
    deact.kind = MachineKind::Deactivate;
    deact.row_id.reserve(static_cast<std::size_t>(num_rows));
    deact.col_id.reserve(static_cast<std::size_t>(num_cols));
    for (int row_id = 0; row_id < num_rows; ++row_id)
        deact.row_id.push_back(row_id);
    for (int col_id = 0; col_id < num_cols; ++col_id)
        deact.col_id.push_back(col_id);
    deact.duration_us = hw.t_transfer_us;
    phases.drop_us = hw.t_transfer_us;
    job.insts.push_back(std::move(deact));

    job.pickup_done_us = phases.pickup_us;
    job.move_done_us = phases.pickup_us + phases.move_us;
    return phases;
}

} // namespace zac
