#include "zair/machine.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.hpp"

namespace zac
{

namespace
{

constexpr double kCoordTol = 1e-6;

/** Map each distinct coordinate (within tolerance) to a dense index. */
std::map<double, int>
denseAxes(const std::vector<double> &coords)
{
    std::map<double, int> axes;
    for (double c : coords)
        axes.emplace(c, 0);
    int idx = 0;
    for (auto &[coord, id] : axes)
        id = idx++;
    return axes;
}

} // namespace

bool
movementsAodCompatible(const std::vector<Point> &begin,
                       const std::vector<Point> &end)
{
    if (begin.size() != end.size())
        panic("movementsAodCompatible: size mismatch");
    const std::size_t n = begin.size();
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double bx = begin[i].x - begin[j].x;
            const double ex = end[i].x - end[j].x;
            const double by = begin[i].y - begin[j].y;
            const double ey = end[i].y - end[j].y;
            // Same begin column -> must share the end column; otherwise
            // strict order must be preserved (no crossing / merging).
            if (std::abs(bx) < kCoordTol) {
                if (std::abs(ex) >= kCoordTol)
                    return false;
            } else if (bx * ex <= 0.0 || std::abs(ex) < kCoordTol) {
                return false;
            }
            if (std::abs(by) < kCoordTol) {
                if (std::abs(ey) >= kCoordTol)
                    return false;
            } else if (by * ey <= 0.0 || std::abs(ey) < kCoordTol) {
                return false;
            }
        }
    }
    return true;
}

JobPhases
lowerRearrangeJob(ZairInstr &job, const Architecture &arch)
{
    if (job.kind != ZairKind::RearrangeJob)
        panic("lowerRearrangeJob: not a rearrange job");
    const std::size_t n = job.begin_locs.size();
    if (n == 0)
        fatal("lowerRearrangeJob: empty job");
    if (job.aod_id < 0 ||
        job.aod_id >= static_cast<int>(arch.aods().size()))
        fatal("lowerRearrangeJob: invalid AOD id");
    const AodSpec &aod =
        arch.aods()[static_cast<std::size_t>(job.aod_id)];
    const NaHardwareParams &hw = arch.params();

    std::vector<Point> begin(n), end(n);
    for (std::size_t i = 0; i < n; ++i) {
        begin[i] = arch.trapPosition(job.begin_locs[i].trap());
        end[i] = arch.trapPosition(job.end_locs[i].trap());
    }
    if (!movementsAodCompatible(begin, end))
        fatal("lowerRearrangeJob: movements violate AOD ordering "
              "constraints; split into separate jobs");

    // Dense AOD line indices from distinct begin coordinates.
    std::vector<double> xs(n), ys(n);
    for (std::size_t i = 0; i < n; ++i) {
        xs[i] = begin[i].x;
        ys[i] = begin[i].y;
    }
    const std::map<double, int> col_axis = denseAxes(xs);
    const std::map<double, int> row_axis = denseAxes(ys);
    const int num_rows = static_cast<int>(row_axis.size());
    const int num_cols = static_cast<int>(col_axis.size());
    if (num_rows > aod.max_rows || num_cols > aod.max_cols)
        fatal("lowerRearrangeJob: job needs " + std::to_string(num_rows) +
              "x" + std::to_string(num_cols) + " AOD lines, AOD has " +
              std::to_string(aod.max_rows) + "x" +
              std::to_string(aod.max_cols));

    // Begin -> end coordinate per line (well-defined by compatibility).
    std::map<int, double> row_end, col_end;
    for (std::size_t i = 0; i < n; ++i) {
        row_end[row_axis.at(ys[i])] = end[i].y;
        col_end[col_axis.at(xs[i])] = end[i].x;
    }

    job.insts.clear();
    JobPhases phases;
    const double parking_dist = aod.min_sep / 2.0;
    const double parking_us = moveDurationUs(parking_dist);

    // ---- pickup: activate row by row (ascending y), parking between.
    bool first_row = true;
    for (const auto &[row_y, row_id] : row_axis) {
        if (!first_row) {
            // Parking micro-move so already-held qubits clear the next
            // row's trap line (Fig. 18c).
            MachineInstr park;
            park.kind = MachineKind::Move;
            park.duration_us = parking_us;
            job.insts.push_back(park);
            phases.pickup_us += parking_us;
        }
        first_row = false;
        MachineInstr act;
        act.kind = MachineKind::Activate;
        act.row_id = {row_id};
        act.row_y = {row_y};
        for (std::size_t i = 0; i < n; ++i) {
            if (std::abs(ys[i] - row_y) < kCoordTol) {
                act.col_id.push_back(col_axis.at(xs[i]));
                act.col_x.push_back(xs[i]);
            }
        }
        act.duration_us = hw.t_transfer_us;
        job.insts.push_back(act);
        phases.pickup_us += hw.t_transfer_us;
    }

    // ---- move: one parallel translation of all lines.
    MachineInstr move;
    move.kind = MachineKind::Move;
    for (const auto &[row_y, row_id] : row_axis) {
        move.row_id.push_back(row_id);
        move.row_y_begin.push_back(row_y);
        move.row_y_end.push_back(row_end.at(row_id));
    }
    for (const auto &[col_x, col_id] : col_axis) {
        move.col_id.push_back(col_id);
        move.col_x_begin.push_back(col_x);
        move.col_x_end.push_back(col_end.at(col_id));
    }
    double max_disp = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        max_disp = std::max(max_disp, distance(begin[i], end[i]));
    move.duration_us = moveDurationUs(max_disp);
    phases.move_us = move.duration_us;
    job.insts.push_back(move);

    // ---- drop: one deactivate transfers every qubit to its SLM trap.
    MachineInstr deact;
    deact.kind = MachineKind::Deactivate;
    for (const auto &[row_y, row_id] : row_axis)
        deact.row_id.push_back(row_id);
    for (const auto &[col_x, col_id] : col_axis)
        deact.col_id.push_back(col_id);
    deact.duration_us = hw.t_transfer_us;
    phases.drop_us = hw.t_transfer_us;
    job.insts.push_back(deact);

    job.pickup_done_us = phases.pickup_us;
    job.move_done_us = phases.pickup_us + phases.move_us;
    return phases;
}

} // namespace zac
