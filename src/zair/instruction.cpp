#include "zair/instruction.hpp"

// ZairInstr is a plain aggregate; its behaviour lives in program.cpp,
// machine.cpp and serialize.cpp. This translation unit anchors vtable-
// free emission of the header for build hygiene.

namespace zac
{
} // namespace zac
