#!/usr/bin/env bash
# Smoke test for the zac_serve daemon (ISSUE 8).
#
# Starts zac_serve on an ephemeral port, waits for /healthz to answer
# with the counter sections, submits the example batch manifest
# through zac_client, and compares the served records against a
# zac_batch offline run of the same manifest — they must be
# byte-identical once the wall-clock timing fields are stripped. Then
# SIGTERMs the daemon and asserts a clean drain (exit code 0).
#
# Usage: scripts/smoke_serve.sh [BUILD_DIR]     (default: build)

set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SERVE="$ROOT/$BUILD_DIR/zac_serve"
CLIENT="$ROOT/$BUILD_DIR/zac_client"
BATCH="$ROOT/$BUILD_DIR/zac_batch"
MANIFEST="$ROOT/examples/batch_manifest.json"

for bin in "$SERVE" "$CLIENT" "$BATCH"; do
    if [ ! -x "$bin" ]; then
        echo "smoke_serve: missing $bin (build the project first)" >&2
        exit 2
    fi
done

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    if [ -n "$SERVER_PID" ]; then
        kill -9 "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "smoke_serve: starting zac_serve on an ephemeral port"
"$SERVE" "$MANIFEST" --port 0 --workers 2 \
    >"$WORK/serve.out" 2>"$WORK/serve.err" &
SERVER_PID=$!

# The daemon prints "zac_serve: listening on HOST:PORT" once bound;
# the format is kept stable for exactly this kind of scripting.
PORT=""
for _ in $(seq 1 100); do
    PORT="$(sed -n \
        's/^zac_serve: listening on [^:]*:\([0-9][0-9]*\)$/\1/p' \
        "$WORK/serve.out")"
    [ -n "$PORT" ] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        cat "$WORK/serve.err" >&2
        echo "smoke_serve: daemon exited before listening" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$PORT" ]; then
    echo "smoke_serve: never saw the listening line" >&2
    exit 1
fi
echo "smoke_serve: daemon is on port $PORT"

HEALTH_OK=""
for _ in $(seq 1 50); do
    if "$CLIENT" --port "$PORT" --healthz \
        --out "$WORK/health.json" 2>/dev/null; then
        HEALTH_OK=1
        break
    fi
    sleep 0.1
done
if [ -z "$HEALTH_OK" ]; then
    echo "smoke_serve: /healthz never answered" >&2
    exit 1
fi
python3 - "$WORK/health.json" <<'EOF'
import json, sys
h = json.load(open(sys.argv[1]))
assert h["status"] == "ok", h
for key in ("uptime_seconds", "workers", "queue_depth", "lanes",
            "jobs", "cache", "connections", "requests"):
    assert key in h, f"healthz missing {key!r}: {h}"
print("smoke_serve: healthz OK "
      f"(workers={h['workers']}, queue_depth={h['queue_depth']})")
EOF

# Submit the manifest through the daemon, then run the identical
# manifest offline through zac_batch.
"$CLIENT" --port "$PORT" --manifest "$MANIFEST" \
    --out "$WORK/served.jsonl"
"$BATCH" "$MANIFEST" --out "$WORK/offline.jsonl" >/dev/null

python3 - "$WORK/served.jsonl" "$WORK/offline.jsonl" <<'EOF'
import json, sys

# Wall-clock fields (and per-run identifiers) are the only allowed
# difference between served and offline records.
VOLATILE = ("queue_seconds", "service_seconds", "compile_seconds",
            "phase_seconds", "job_id", "attempts", "cache_hit")

def canonical(path):
    out = []
    for line in open(path):
        rec = json.loads(line)
        if rec.get("type") not in ("result", "error"):
            continue  # offline runs also log submit records
        for key in VOLATILE:
            rec.pop(key, None)
        out.append(json.dumps(rec, sort_keys=True))
    return sorted(out)

served = canonical(sys.argv[1])
offline = canonical(sys.argv[2])
assert len(served) == 3, f"expected 3 served records, got {len(served)}"
assert served == offline, (
    "served records differ from offline zac_batch output")
print(f"smoke_serve: {len(served)} served records byte-identical to "
      "offline (timing fields stripped)")
EOF

# Graceful drain: SIGTERM must finish in-flight work and exit 0.
kill -TERM "$SERVER_PID"
RC=0
wait "$SERVER_PID" || RC=$?
SERVER_PID=""
if [ "$RC" -ne 0 ]; then
    cat "$WORK/serve.err" >&2
    echo "smoke_serve: drain exited $RC (want 0)" >&2
    exit 1
fi
if ! grep -q "drained (clean)" "$WORK/serve.err"; then
    cat "$WORK/serve.err" >&2
    echo "smoke_serve: daemon did not report a clean drain" >&2
    exit 1
fi
echo "smoke_serve: clean SIGTERM drain (exit 0)"
echo "smoke_serve: OK"
