#!/usr/bin/env python3
"""Unit tests for check_perf_regression.py (run via ctest).

The gate script is pure stdlib and communicates through its exit code,
so the tests exercise it the way CI does: subprocess invocations on
JSON fixtures. The headline case injects a superlinear regression into
a linear scaling curve and asserts the zac.perf_scaling.v1 exponent
gate fails the build; further cases pin the per-point gate, the
phase-exponent gate, exit 2 (not a KeyError traceback) on missing
gated flag keys, and that the committed repo baselines still pass
through the table-driven registry.
"""

import copy
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import unittest

REPO = pathlib.Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "check_perf_regression.py"


def run(*argv, env_extra=None):
    env = dict(os.environ)
    env.pop("GITHUB_STEP_SUMMARY", None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, str(SCRIPT), *map(str, argv)],
        capture_output=True,
        text=True,
        env=env,
    )


def scaling_point(n, seconds, phase_share=0.25):
    return {
        "num_qubits": n,
        "gates_2q": n,
        "gates_1q": n,
        "compile_seconds": seconds,
        "phase_totals": {
            "sa_seconds": seconds * phase_share,
            "placement_seconds": seconds * phase_share,
            "scheduling_seconds": seconds * phase_share,
            "fidelity_seconds": seconds * phase_share,
        },
        "max_rss_kb": 10000,
        "fidelity": 0.9,
        "program_bytes": 1000 * n,
    }


def scaling_doc(curve, sizes=(10, 100, 1000, 2000)):
    """A zac.perf_scaling.v1 document with one ghz-like family whose
    compile time at n qubits is curve(n) seconds."""
    points = [scaling_point(n, curve(n)) for n in sizes]
    return {
        "schema": "zac.perf_scaling.v1",
        "fast_mode": False,
        "seed": 1,
        "families": [
            {
                "family": "ghz",
                "exponent": 1.0,
                "phase_exponents": {},
                "points": points,
            }
        ],
        "streamed_vs_dom_identical": True,
        "deterministic": True,
        "max_point_qubits": max(sizes),
    }


class ScalingTempFiles(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, name, doc):
        path = pathlib.Path(self._dir.name) / name
        path.write_text(json.dumps(doc))
        return path


class TestScalingGate(ScalingTempFiles):
    def test_identical_curves_pass(self):
        base = self.write("base.json", scaling_doc(lambda n: 1e-3 * n))
        fresh = self.write("fresh.json", scaling_doc(lambda n: 1e-3 * n))
        r = run("--schema", "zac.perf_scaling.v1", base, fresh)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_uniform_machine_speed_change_passes(self):
        # A 3x slower machine shifts every point equally; both the
        # normalized point gate and the exponent are invariant.
        base = self.write("base.json", scaling_doc(lambda n: 1e-3 * n))
        fresh = self.write(
            "fresh.json", scaling_doc(lambda n: 3e-3 * n)
        )
        r = run("--schema", "zac.perf_scaling.v1", base, fresh)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_injected_superlinear_regression_fails(self):
        # Baseline is linear; the fresh curve picks up an extra factor
        # of n (accidental O(n^2) — e.g. a linear scan per qubit). The
        # asymptotic-exponent gate must fail the build.
        base = self.write("base.json", scaling_doc(lambda n: 1e-3 * n))
        fresh = self.write(
            "fresh.json", scaling_doc(lambda n: 1e-4 * n * n)
        )
        r = run("--schema", "zac.perf_scaling.v1", base, fresh)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("exponent blew up", r.stdout)

    def test_single_point_regression_fails(self):
        # One size 2.5x over the committed curve (others untouched):
        # the exponent barely moves, the per-point gate must catch it.
        base = self.write("base.json", scaling_doc(lambda n: 1e-3 * n))
        doc = scaling_doc(lambda n: 1e-3 * n)
        pt = doc["families"][0]["points"][1]
        assert pt["num_qubits"] == 100
        pt["compile_seconds"] *= 2.5
        fresh = self.write("fresh.json", doc)
        r = run("--schema", "zac.perf_scaling.v1", base, fresh)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("normalized compile time", r.stdout)
        self.assertNotIn("exponent blew up", r.stdout)

    def test_phase_exponent_blowup_fails(self):
        # Total stays linear but one phase (the scheduler) silently
        # goes quadratic inside it; the per-phase gate must fire.
        base = self.write("base.json", scaling_doc(lambda n: 1e-3 * n))
        doc = scaling_doc(lambda n: 1e-3 * n)
        for pt in doc["families"][0]["points"]:
            n = pt["num_qubits"]
            pt["phase_totals"]["scheduling_seconds"] = 1e-4 * n * n
        fresh = self.write("fresh.json", doc)
        r = run("--schema", "zac.perf_scaling.v1", base, fresh)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("phase scheduling_seconds exponent blew up",
                      r.stdout)

    def test_sub_noise_points_not_gated(self):
        # Points under 5 ms in both files are timing noise; a 3x blip
        # there must not fail the build (the exponent fit still sees
        # them, but a single tiny point cannot move it past margin).
        base = self.write("base.json", scaling_doc(lambda n: 1e-6 * n))
        doc = scaling_doc(lambda n: 1e-6 * n)
        doc["families"][0]["points"][1]["compile_seconds"] *= 3.0
        fresh = self.write("fresh.json", doc)
        r = run("--schema", "zac.perf_scaling.v1", base, fresh)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_fast_fresh_vs_full_committed_intersects(self):
        # The committed sweep has more sizes than a --fast fresh run;
        # gates must compare on the intersection, not reject.
        base = self.write(
            "base.json",
            scaling_doc(lambda n: 1e-3 * n,
                        sizes=(10, 20, 100, 500, 1000, 2000)),
        )
        fresh = self.write(
            "fresh.json",
            scaling_doc(lambda n: 1e-3 * n, sizes=(10, 100, 2000)),
        )
        r = run("--schema", "zac.perf_scaling.v1", base, fresh)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_semantics_flag_false_fails(self):
        base = self.write("base.json", scaling_doc(lambda n: 1e-3 * n))
        doc = scaling_doc(lambda n: 1e-3 * n)
        doc["streamed_vs_dom_identical"] = False
        fresh = self.write("fresh.json", doc)
        r = run("--schema", "zac.perf_scaling.v1", base, fresh)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("streamed_vs_dom_identical == false", r.stdout)

    def test_short_sweep_reach_fails(self):
        base = self.write("base.json", scaling_doc(lambda n: 1e-3 * n))
        fresh = self.write(
            "fresh.json",
            scaling_doc(lambda n: 1e-3 * n, sizes=(10, 100, 640)),
        )
        r = run("--schema", "zac.perf_scaling.v1", base, fresh)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("reached only 640 qubits", r.stdout)


class TestMissingKeys(ScalingTempFiles):
    def test_missing_gated_flag_is_exit_2_not_traceback(self):
        base = self.write("base.json", scaling_doc(lambda n: 1e-3 * n))
        doc = scaling_doc(lambda n: 1e-3 * n)
        del doc["deterministic"]
        fresh = self.write("fresh.json", doc)
        r = run("--schema", "zac.perf_scaling.v1", base, fresh)
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertIn("missing key 'deterministic'", r.stderr)
        self.assertNotIn("Traceback", r.stderr)
        self.assertNotIn("KeyError", r.stderr)

    def test_missing_nested_service_flag_is_exit_2(self):
        doc = json.loads(
            (REPO / "BENCH_service.json").read_text()
        )
        broken = copy.deepcopy(doc)
        del broken["chaos"]["outputs_identical"]
        base = self.write("base.json", doc)
        fresh = self.write("fresh.json", broken)
        r = run("--schema", "zac.perf_service.v4", base, fresh, 1.25)
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertIn("chaos.outputs_identical", r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_schema_mismatch_is_exit_2(self):
        base = self.write("base.json", scaling_doc(lambda n: 1e-3 * n))
        r = run(
            "--schema",
            "zac.perf_placement.v4",
            base,
            base,
        )
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertIn("schema mismatch", r.stderr)

    def test_missing_file_is_exit_2(self):
        base = self.write("base.json", scaling_doc(lambda n: 1e-3 * n))
        r = run("--schema", "zac.perf_scaling.v1", base,
                pathlib.Path(self._dir.name) / "nope.json")
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertIn("not found", r.stderr)

    def test_unknown_schema_flag_is_exit_2(self):
        base = self.write("base.json", scaling_doc(lambda n: 1e-3 * n))
        r = run("--schema", "zac.perf_bogus.v9", base, base)
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertIn("not supported", r.stderr)


class TestCommittedBaselines(unittest.TestCase):
    """The repo's committed baselines must pass against themselves
    through the registry — the same invocations CI runs."""

    def test_placement_v4_self(self):
        r = run(
            "--schema", "zac.perf_placement.v4",
            REPO / "BENCH_placement.json",
            REPO / "BENCH_placement.json", 1.25,
        )
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_service_v4_self(self):
        r = run(
            "--schema", "zac.perf_service.v4",
            REPO / "BENCH_service.json",
            REPO / "BENCH_service.json", 1.25,
        )
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_scaling_v1_self(self):
        r = run(
            "--schema", "zac.perf_scaling.v1",
            REPO / "BENCH_scaling.json",
            REPO / "BENCH_scaling.json",
        )
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_placement_metric_regression_fails(self):
        doc = json.loads((REPO / "BENCH_placement.json").read_text())
        doc["compile_total_seconds"] *= 2.0
        with tempfile.TemporaryDirectory() as d:
            fresh = pathlib.Path(d) / "fresh.json"
            fresh.write_text(json.dumps(doc))
            r = run(
                "--schema", "zac.perf_placement.v4",
                REPO / "BENCH_placement.json", fresh, 1.25,
            )
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("regressed beyond the threshold", r.stdout)


class TestStepSummary(ScalingTempFiles):
    def test_summary_written_when_env_set(self):
        base = self.write("base.json", scaling_doc(lambda n: 1e-3 * n))
        fresh = self.write("fresh.json", scaling_doc(lambda n: 1e-3 * n))
        summary = pathlib.Path(self._dir.name) / "summary.md"
        r = run(
            "--schema", "zac.perf_scaling.v1", base, fresh,
            env_extra={"GITHUB_STEP_SUMMARY": str(summary)},
        )
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        text = summary.read_text()
        self.assertIn("zac.perf_scaling.v1", text)
        self.assertIn("PASS", text)
        self.assertIn("ghz: exponent", text)
        self.assertIn("max_point_qubits", text)


if __name__ == "__main__":
    unittest.main()
