#!/usr/bin/env python3
"""Fail CI when the placement perf trajectory regresses.

Usage: check_perf_regression.py COMMITTED.json FRESH.json [THRESHOLD]

Compares a freshly measured BENCH_placement.json against the committed
one and exits non-zero when ``compile_total_seconds`` regresses by more
than THRESHOLD (default 1.25, i.e. +25%).

The committed JSON is usually measured on different hardware than the
CI runner, so raw seconds are not comparable. Per bench/README.md the
frozen ``zac::legacy`` SA placement acts as a machine-speed control:
its implementation never changes, so the ratio
``compile_total_seconds / sum(sa legacy_seconds)`` cancels the
machine factor and isolates genuine compiler regressions.

Also fails when either run reports non-bit-identical outputs from the
legacy-equivalence checks (speed must never change semantics).
"""

import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema", "")
    if not schema.startswith("zac.perf_placement"):
        sys.exit(f"{path}: unexpected schema {schema!r}")
    return doc


def normalized_compile_seconds(doc):
    legacy_total = sum(r["legacy_seconds"] for r in doc["sa_placement"])
    if legacy_total <= 0.0:
        sys.exit("degenerate legacy SA total; cannot normalize")
    return doc["compile_total_seconds"] / legacy_total


def main(argv):
    if len(argv) < 3:
        sys.exit(__doc__)
    committed = load(argv[1])
    fresh = load(argv[2])
    threshold = float(argv[3]) if len(argv) > 3 else 1.25

    ok = True
    for key in ("sa_outputs_identical", "dynamic_outputs_identical"):
        if not fresh.get(key, True):
            print(f"FAIL: fresh run reports {key} == false")
            ok = False

    base = normalized_compile_seconds(committed)
    now = normalized_compile_seconds(fresh)
    ratio = now / base
    print(
        f"compile_total_seconds (legacy-SA-normalized): "
        f"committed {base:.4f}, fresh {now:.4f}, ratio {ratio:.3f} "
        f"(threshold {threshold:.2f})"
    )
    print(
        f"raw compile_total_seconds: committed "
        f"{committed['compile_total_seconds']:.4f}s, fresh "
        f"{fresh['compile_total_seconds']:.4f}s"
    )
    if ratio > threshold:
        print("FAIL: compile time regressed beyond the threshold")
        ok = False

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
