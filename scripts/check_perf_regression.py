#!/usr/bin/env python3
"""Fail CI when a benchmark perf trajectory regresses.

Usage:
    check_perf_regression.py [--schema SCHEMA] COMMITTED.json FRESH.json
                             [THRESHOLD]

Compares a freshly measured benchmark JSON against the committed one
and exits non-zero when the schema's gated metric regresses by more
than THRESHOLD (default 1.25, i.e. +25%), or when either run reports
non-bit-identical outputs (speed must never change semantics).

Supported schemas (--schema selects one explicitly; without the flag
the committed file's own schema tag is used, and both files must
carry the same tag either way):

  zac.perf_placement.v4 (and v3, v2, v1)
      Metric: ``compile_total_seconds`` normalized by the frozen
      ``zac::legacy`` SA total. The committed JSON is usually measured
      on different hardware than the CI runner, so raw seconds are not
      comparable; the legacy SA implementation never changes, making
      the ratio a machine-speed control that isolates genuine compiler
      regressions. Also gates on ``sa_outputs_identical``,
      ``dynamic_outputs_identical``, (v3+)
      ``sched_fid_outputs_identical``, and (v4)
      ``sa_multi_seed_deterministic`` plus a floor of 2.0x on
      ``sa_incremental_speedup`` (the incremental SA engine vs. the
      frozen legacy reference).

When the ``GITHUB_STEP_SUMMARY`` environment variable is set (GitHub
Actions), a markdown comparison table — headline metrics plus
per-phase timings for the placement schema — is appended to it so
perf drift is visible in the run summary without downloading
artifacts.

  zac.perf_service.v4 (and v3, v2, v1)
      Metric: ``scaling_overhead`` — wall seconds of the batch
      compile-service run at the largest worker count, normalized by
      the ideal-scaling expectation sequential/min(workers, cores)
      measured in the same run (1.0 = perfect scaling on that
      machine's cores, so the figure is machine-portable). Also gates
      on ``outputs_identical`` and ``cache.second_round_all_hits``;
      v2+ additionally gates on the chaos-soak invariants
      ``chaos.terminal_records_exactly_once`` (every submitted job one
      terminal record), ``chaos.outputs_identical`` (fault-injected
      and snapshot-served results bit-identical to fresh compiles),
      ``chaos.warm_start_served_from_snapshot`` (a restart reloads the
      persisted cache and serves it as hits), and
      ``chaos.corruption_tolerated`` (every snapshot-corruption mode
      loads without failing). v3 adds the zac_serve client-churn
      invariants ``churn.exactly_once_per_connection`` (every client
      connection received exactly one terminal record),
      ``churn.outputs_identical_offline`` (every served record
      byte-identical to the offline service output once wall-clock
      fields are stripped), and ``churn.drained_clean`` (SIGTERM-style
      drain under load came back clean), plus a dedicated latency
      gate: fresh ``churn.latency_p99_normalized`` (end-to-end p99
      over the mean sequential per-job compile time; concurrency and
      machine speed cancel out of the ratio) must stay within
      CHURN_LATENCY_THRESHOLD of the committed figure. v4 adds the
      zero-DOM streaming invariants: ``streamed_vs_dom.identical``
      (every circuit compiled through the streaming writer is
      byte-identical to the DOM dump) and
      ``warm_vs_cold.deterministic`` (the warm-context/streamed
      service run is bit-identical to the cold legacy-cost run), and
      surfaces cold/warm jobs-per-second in the step summary.

Exit codes: 0 ok, 1 regression/semantics failure, 2 bad input
(missing file, malformed JSON, schema mismatch).
"""

import argparse
import json
import os
import sys

PLACEMENT_SCHEMAS = (
    "zac.perf_placement.v1",
    "zac.perf_placement.v2",
    "zac.perf_placement.v3",
    "zac.perf_placement.v4",
)

# Floor on the v4 incremental-SA headline figure (ISSUE 5 acceptance:
# >= 2x geomean vs. the frozen zac::legacy reference).
SA_INCREMENTAL_SPEEDUP_FLOOR = 2.0
# Max allowed fresh/committed ratio on churn.latency_p99_normalized
# (v3). Looser than the headline threshold: tail latency under 200
# concurrent clients is noisier than aggregate throughput, and the
# committed figure may come from a different core count.
CHURN_LATENCY_THRESHOLD = 2.0
SERVICE_SCHEMAS = (
    "zac.perf_service.v1",
    "zac.perf_service.v2",
    "zac.perf_service.v3",
    "zac.perf_service.v4",
)
KNOWN_SCHEMAS = PLACEMENT_SCHEMAS + SERVICE_SCHEMAS


def fail_input(msg):
    """Report a usage/input problem (not a perf regression) and exit."""
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path, want_schema):
    """Load one benchmark JSON, failing with a clear message (never a
    traceback) when the file is missing, malformed, or carries an
    unexpected schema tag."""
    if not os.path.exists(path):
        fail_input(
            f"{path}: baseline/benchmark JSON not found. Generate it "
            f"with ./build/perf_placement or ./build/perf_service "
            f"(see bench/README.md) and commit the baseline."
        )
    try:
        with open(path) as f:
            doc = json.load(f)
    except json.JSONDecodeError as e:
        fail_input(f"{path}: not valid JSON ({e})")
    if not isinstance(doc, dict):
        fail_input(f"{path}: expected a JSON object at top level")

    schema = doc.get("schema")
    if schema is None:
        fail_input(f"{path}: missing 'schema' field")
    if want_schema is not None:
        if schema != want_schema:
            fail_input(
                f"{path}: schema mismatch: found {schema!r}, expected "
                f"{want_schema!r} (is this the right baseline file, or "
                f"does the baseline predate a schema bump? regenerate "
                f"and re-commit it if so)"
            )
    elif schema not in KNOWN_SCHEMAS:
        fail_input(
            f"{path}: unknown schema {schema!r}; this script "
            f"understands {', '.join(KNOWN_SCHEMAS)}"
        )
    return doc


def require(doc, path, key):
    if key not in doc:
        fail_input(
            f"{path}: missing key {key!r} required by schema "
            f"{doc.get('schema')!r}"
        )
    return doc[key]


def placement_metric(doc, path):
    """Legacy-SA-normalized compile seconds (lower is better)."""
    rows = require(doc, path, "sa_placement")
    try:
        legacy_total = sum(r["legacy_seconds"] for r in rows)
        metric = require(doc, path, "compile_total_seconds")
    except (KeyError, TypeError) as e:
        fail_input(
            f"{path}: malformed sa_placement rows for schema "
            f"{doc.get('schema')!r} ({e!r}); regenerate the file with "
            f"./build/perf_placement"
        )
    if legacy_total <= 0.0:
        fail_input(f"{path}: degenerate legacy SA total; cannot "
                   "normalize")
    if not isinstance(metric, (int, float)) or metric < 0:
        fail_input(f"{path}: compile_total_seconds is not a "
                   "non-negative number")
    return metric / legacy_total


def placement_flags(doc):
    return {
        "sa_outputs_identical": doc.get("sa_outputs_identical", True),
        "dynamic_outputs_identical": doc.get(
            "dynamic_outputs_identical", True
        ),
        "sched_fid_outputs_identical": doc.get(
            "sched_fid_outputs_identical", True
        ),
        "sa_multi_seed_deterministic": doc.get(
            "sa_multi_seed_deterministic", True
        ),
    }


def service_metric(doc, path):
    """Ideal-scaling-normalized parallel seconds (lower is better)."""
    metric = require(doc, path, "scaling_overhead")
    if not isinstance(metric, (int, float)) or metric <= 0.0:
        fail_input(f"{path}: scaling_overhead is not a positive "
                   "number")
    return metric


def service_flags(doc):
    cache = doc.get("cache", {})
    flags = {
        "outputs_identical": doc.get("outputs_identical", True),
        "cache.second_round_all_hits": cache.get(
            "second_round_all_hits", True
        ),
    }
    schema = doc.get("schema")
    if schema in ("zac.perf_service.v2", "zac.perf_service.v3",
                  "zac.perf_service.v4"):
        chaos = doc.get("chaos", {})
        for key in (
            "terminal_records_exactly_once",
            "outputs_identical",
            "warm_start_served_from_snapshot",
            "corruption_tolerated",
        ):
            flags[f"chaos.{key}"] = chaos.get(key, False)
    if schema in ("zac.perf_service.v3", "zac.perf_service.v4"):
        churn = doc.get("churn", {})
        for key in (
            "exactly_once_per_connection",
            "outputs_identical_offline",
            "drained_clean",
        ):
            flags[f"churn.{key}"] = churn.get(key, False)
    if schema == "zac.perf_service.v4":
        flags["streamed_vs_dom.identical"] = doc.get(
            "streamed_vs_dom", {}
        ).get("identical", False)
        flags["warm_vs_cold.deterministic"] = doc.get(
            "warm_vs_cold", {}
        ).get("deterministic", False)
    return flags


def fmt_ratio(committed, fresh):
    """Fresh/committed as a cell, or n/a when not comparable."""
    if (
        isinstance(committed, (int, float))
        and isinstance(fresh, (int, float))
        and committed > 0
    ):
        return f"{fresh / committed:.3f}"
    return "n/a"


def summary_rows_placement(committed, fresh):
    """(section, rows) pairs for the placement step-summary table."""
    headline = [
        ("compile_total_seconds", "compile_total_seconds"),
        ("sa_geomean_speedup", "sa_geomean_speedup"),
        ("sa_incremental_speedup", "sa_incremental_speedup"),
        ("dynamic_geomean_speedup", "dynamic_geomean_speedup"),
        ("sched_fid_geomean_speedup", "sched_fid_geomean_speedup"),
    ]
    rows = []
    for label, key in headline:
        if key in committed or key in fresh:
            rows.append((label, committed.get(key), fresh.get(key)))
    phase_keys = (
        "sa_seconds",
        "reuse_matching_seconds",
        "gate_placement_seconds",
        "movement_seconds",
        "scheduling_seconds",
        "fidelity_seconds",
    )
    cp = committed.get("phase_totals", {})
    fp = fresh.get("phase_totals", {})
    for key in phase_keys:
        if key in cp or key in fp:
            rows.append((f"phase: {key}", cp.get(key), fp.get(key)))
    return rows


def summary_rows_service(committed, fresh):
    rows = [
        (
            "scaling_overhead",
            committed.get("scaling_overhead"),
            fresh.get("scaling_overhead"),
        ),
        (
            "sequential_jobs_per_second",
            committed.get("sequential_jobs_per_second"),
            fresh.get("sequential_jobs_per_second"),
        ),
        (
            "parallel_seconds_at_max",
            committed.get("parallel_seconds_at_max"),
            fresh.get("parallel_seconds_at_max"),
        ),
    ]
    cc = committed.get("chaos", {})
    fc = fresh.get("chaos", {})
    for key in ("retries", "coalesced_served",
                "snapshot_records_loaded", "warm_cache_hits"):
        if key in cc or key in fc:
            rows.append((f"chaos: {key}", cc.get(key), fc.get(key)))
    cu = committed.get("churn", {})
    fu = fresh.get("churn", {})
    for key in ("latency_p50_seconds", "latency_p99_seconds",
                "latency_p99_normalized", "cache_hits", "failures"):
        if key in cu or key in fu:
            rows.append((f"churn: {key}", cu.get(key), fu.get(key)))
    cw = committed.get("warm_vs_cold", {})
    fw = fresh.get("warm_vs_cold", {})
    for key in ("cold_jobs_per_second", "warm_jobs_per_second",
                "speedup"):
        if key in cw or key in fw:
            rows.append(
                (f"warm_vs_cold: {key}", cw.get(key), fw.get(key))
            )
    return [r for r in rows if r[1] is not None or r[2] is not None]


def write_step_summary(schema, committed, fresh, metric_name, base, now,
                       threshold, ok):
    """Append a markdown comparison table to $GITHUB_STEP_SUMMARY (no-op
    outside GitHub Actions) so perf drift is visible in the run summary
    without downloading artifacts."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    if schema in PLACEMENT_SCHEMAS:
        rows = summary_rows_placement(committed, fresh)
        flags = placement_flags(fresh)
    else:
        rows = summary_rows_service(committed, fresh)
        flags = service_flags(fresh)
    lines = [
        f"### Perf gate: `{schema}` — {'PASS' if ok else 'FAIL'}",
        "",
        f"Gated metric **{metric_name}**: committed {base:.4f}, "
        f"fresh {now:.4f}, ratio {now / base:.3f} "
        f"(threshold {threshold:.2f})",
        "",
        "| metric | committed | fresh | fresh/committed |",
        "| --- | ---: | ---: | ---: |",
    ]
    for label, c, f in rows:
        c_cell = f"{c:.4f}" if isinstance(c, (int, float)) else "—"
        f_cell = f"{f:.4f}" if isinstance(f, (int, float)) else "—"
        lines.append(
            f"| {label} | {c_cell} | {f_cell} | {fmt_ratio(c, f)} |"
        )
    flag_cells = ", ".join(
        f"`{k}`={'true' if v else '**false**'}"
        for k, v in flags.items()
    )
    lines += ["", f"Semantics flags (fresh run): {flag_cells}", ""]
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n")


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--schema",
        help="require this exact schema tag in both files "
        "(default: the committed file's tag)",
    )
    parser.add_argument("committed", help="committed baseline JSON")
    parser.add_argument("fresh", help="freshly measured JSON")
    parser.add_argument(
        "threshold",
        nargs="?",
        type=float,
        default=1.25,
        help="max allowed fresh/committed metric ratio (default 1.25)",
    )
    args = parser.parse_args(argv[1:])

    if args.schema is not None and args.schema not in KNOWN_SCHEMAS:
        fail_input(
            f"--schema {args.schema!r} is not supported; choose from "
            f"{', '.join(KNOWN_SCHEMAS)}"
        )

    committed = load(args.committed, args.schema)
    # Both files must agree on the schema even without --schema.
    fresh = load(args.fresh, args.schema or committed["schema"])

    if committed["schema"] in PLACEMENT_SCHEMAS:
        metric_of, flags_of, metric_name = (
            placement_metric,
            placement_flags,
            "compile_total_seconds (legacy-SA-normalized)",
        )
    else:
        metric_of, flags_of, metric_name = (
            service_metric,
            service_flags,
            "scaling_overhead (ideal-scaling-normalized)",
        )

    ok = True
    for key, value in flags_of(fresh).items():
        if not value:
            print(f"FAIL: fresh run reports {key} == false")
            ok = False

    base = metric_of(committed, args.committed)
    now = metric_of(fresh, args.fresh)
    if base <= 0.0:
        fail_input(
            f"{args.committed}: committed metric is {base}; cannot "
            f"compute a regression ratio — regenerate the baseline"
        )
    ratio = now / base
    print(
        f"{metric_name}: committed {base:.4f}, fresh {now:.4f}, "
        f"ratio {ratio:.3f} (threshold {args.threshold:.2f})"
    )
    if ratio > args.threshold:
        print("FAIL: perf metric regressed beyond the threshold")
        ok = False

    # v4 additionally floors the incremental-SA headline figure.
    if committed["schema"] == "zac.perf_placement.v4":
        speedup = require(fresh, args.fresh, "sa_incremental_speedup")
        if not isinstance(speedup, (int, float)) or isinstance(
            speedup, bool
        ):
            fail_input(
                f"{args.fresh}: sa_incremental_speedup is not a "
                f"number; regenerate the file with ./build/"
                f"perf_placement"
            )
        print(
            f"sa_incremental_speedup: fresh {speedup:.2f}x "
            f"(floor {SA_INCREMENTAL_SPEEDUP_FLOOR:.1f}x)"
        )
        if speedup < SA_INCREMENTAL_SPEEDUP_FLOOR:
            print(
                "FAIL: incremental SA speedup fell below the "
                f"{SA_INCREMENTAL_SPEEDUP_FLOOR:.1f}x floor"
            )
            ok = False

    # v3+ additionally gates the churn tail latency against the
    # committed figure (both are per-job-normalized, so the ratio is
    # machine-portable modulo core count).
    if committed["schema"] in ("zac.perf_service.v3",
                               "zac.perf_service.v4"):
        base_churn = require(
            require(committed, args.committed, "churn"),
            args.committed,
            "latency_p99_normalized",
        )
        now_churn = require(
            require(fresh, args.fresh, "churn"),
            args.fresh,
            "latency_p99_normalized",
        )
        if (
            not isinstance(base_churn, (int, float))
            or isinstance(base_churn, bool)
            or base_churn <= 0.0
        ):
            fail_input(
                f"{args.committed}: churn.latency_p99_normalized is "
                f"not a positive number; regenerate the baseline with "
                f"./build/perf_service"
            )
        churn_ratio = now_churn / base_churn
        print(
            f"churn.latency_p99_normalized: committed "
            f"{base_churn:.2f}, fresh {now_churn:.2f}, ratio "
            f"{churn_ratio:.3f} (threshold "
            f"{CHURN_LATENCY_THRESHOLD:.2f})"
        )
        if churn_ratio > CHURN_LATENCY_THRESHOLD:
            print(
                "FAIL: churn p99 latency regressed beyond the "
                "threshold"
            )
            ok = False

    write_step_summary(
        committed["schema"], committed, fresh, metric_name, base, now,
        args.threshold, ok,
    )

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
