#!/usr/bin/env python3
"""Fail CI when a benchmark perf trajectory regresses.

Usage:
    check_perf_regression.py [--schema SCHEMA] COMMITTED.json FRESH.json
                             [THRESHOLD]

Compares a freshly measured benchmark JSON against the committed one
and exits non-zero when the schema's gated metric regresses by more
than THRESHOLD (default 1.25, i.e. +25%), when any gated semantics
flag is false, or when a schema-specific extra gate (speedup floor,
tail-latency ratio, scaling exponent) fails.

The per-schema gate logic lives in one table (SCHEMAS below): each
entry declares the headline metric, the gated flag keys (dotted paths;
a missing gated key is an input error, exit 2, never a KeyError), the
step-summary rows, and any extra gates. Adding a schema version means
adding a table entry, not a new code branch.

Supported schemas (--schema selects one explicitly; without the flag
the committed file's own schema tag is used, and both files must
carry the same tag either way):

  zac.perf_placement.v4 (and v3, v2, v1)
      Metric: ``compile_total_seconds`` normalized by the frozen
      ``zac::legacy`` SA total. The committed JSON is usually measured
      on different hardware than the CI runner, so raw seconds are not
      comparable; the legacy SA implementation never changes, making
      the ratio a machine-speed control that isolates genuine compiler
      regressions. Also gates on ``sa_outputs_identical``,
      (v2+) ``dynamic_outputs_identical``, (v3+)
      ``sched_fid_outputs_identical``, and (v4)
      ``sa_multi_seed_deterministic`` plus a floor of 2.0x on
      ``sa_incremental_speedup`` (the incremental SA engine vs. the
      frozen legacy reference).

  zac.perf_service.v4 (and v3, v2, v1)
      Metric: ``scaling_overhead`` — wall seconds of the batch
      compile-service run at the largest worker count, normalized by
      the ideal-scaling expectation sequential/min(workers, cores)
      measured in the same run (1.0 = perfect scaling on that
      machine's cores, so the figure is machine-portable). Also gates
      on ``outputs_identical`` and ``cache.second_round_all_hits``;
      v2+ additionally gates on the chaos-soak invariants
      (``chaos.*``), v3+ on the zac_serve client-churn invariants
      (``churn.*``) plus a dedicated 2.0x ratio gate on fresh vs.
      committed ``churn.latency_p99_normalized``, and v4 on the
      zero-DOM streaming invariants ``streamed_vs_dom.identical`` and
      ``warm_vs_cold.deterministic``.

  zac.perf_scaling.v1
      The workload-scaling sweep (bench/perf_scaling.cpp): per-family
      qubit-count vs. compile-time curves. No single headline metric;
      instead two curve gates, both machine-normalized so a committed
      baseline from different hardware still gates meaningfully:
        * point gate — for every (family, size) present in both files,
          each curve is normalized by its own time at the smallest
          common size (machine speed cancels); the fresh normalized
          point must stay within SCALING_POINT_THRESHOLD (1.75x) of
          the committed one. Points faster than 5 ms in both files are
          skipped as noise.
        * exponent gate — the asymptotic log-log slope is refitted on
          the common sizes for both files (so a --fast fresh run
          compares against the same point set of the full committed
          sweep); the fresh exponent must not exceed the committed one
          by more than SCALING_EXPONENT_MARGIN (0.35), for the total
          compile time AND for each compiler phase whose cost is big
          enough to fit reliably — an SA or scheduler phase drifting
          superlinear fails the build even if the total still looks
          tame.
      Also gates on ``streamed_vs_dom_identical`` and
      ``deterministic``, and requires the fresh sweep to reach at
      least 1000 qubits (``max_point_qubits``).

When the ``GITHUB_STEP_SUMMARY`` environment variable is set (GitHub
Actions), a markdown comparison table is appended to it so perf drift
is visible in the run summary without downloading artifacts.

Exit codes: 0 ok, 1 regression/semantics failure, 2 bad input
(missing file, malformed JSON, schema mismatch, missing gated key).
"""

import argparse
import json
import math
import os
import sys

# Floor on the placement-v4 incremental-SA headline figure (ISSUE 5
# acceptance: >= 2x geomean vs. the frozen zac::legacy reference).
SA_INCREMENTAL_SPEEDUP_FLOOR = 2.0
# Max allowed fresh/committed ratio on churn.latency_p99_normalized
# (service v3+). Looser than the headline threshold: tail latency
# under 200 concurrent clients is noisier than aggregate throughput,
# and the committed figure may come from a different core count.
CHURN_LATENCY_THRESHOLD = 2.0
# Scaling-sweep gates (see the module docstring).
SCALING_POINT_THRESHOLD = 1.75
SCALING_MIN_GATE_SECONDS = 0.005
SCALING_EXPONENT_MARGIN = 0.35
SCALING_MIN_POINT_QUBITS = 1000
SCALING_PHASE_KEYS = (
    "sa_seconds",
    "placement_seconds",
    "scheduling_seconds",
    "fidelity_seconds",
)


def fail_input(msg):
    """Report a usage/input problem (not a perf regression) and exit."""
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(2)


def lookup(doc, dotted):
    """Resolve a dotted key path; returns (found, value)."""
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return False, None
        node = node[part]
    return True, node


def require(doc, path, key):
    """Dotted-path lookup that exits 2 (never KeyError) when absent."""
    found, value = lookup(doc, key)
    if not found:
        fail_input(
            f"{path}: missing key {key!r} required by schema "
            f"{doc.get('schema')!r}; regenerate the file with the "
            f"matching bench binary (see bench/README.md)"
        )
    return value


def gated_flags(doc, path, keys):
    """Resolve every gated flag key, exiting 2 with a clear message on
    a missing key instead of treating absence as pass or fail."""
    return {key: require(doc, path, key) for key in keys}


# --------------------------------------------------------------- metrics


def placement_metric(doc, path):
    """Legacy-SA-normalized compile seconds (lower is better)."""
    rows = require(doc, path, "sa_placement")
    try:
        legacy_total = sum(r["legacy_seconds"] for r in rows)
        metric = require(doc, path, "compile_total_seconds")
    except (KeyError, TypeError) as e:
        fail_input(
            f"{path}: malformed sa_placement rows for schema "
            f"{doc.get('schema')!r} ({e!r}); regenerate the file with "
            f"./build/perf_placement"
        )
    if legacy_total <= 0.0:
        fail_input(f"{path}: degenerate legacy SA total; cannot "
                   "normalize")
    if not isinstance(metric, (int, float)) or metric < 0:
        fail_input(f"{path}: compile_total_seconds is not a "
                   "non-negative number")
    return metric / legacy_total


def service_metric(doc, path):
    """Ideal-scaling-normalized parallel seconds (lower is better)."""
    metric = require(doc, path, "scaling_overhead")
    if not isinstance(metric, (int, float)) or metric <= 0.0:
        fail_input(f"{path}: scaling_overhead is not a positive "
                   "number")
    return metric


# ----------------------------------------------------------- extra gates


def gate_sa_incremental_floor(committed, fresh, cpath, fpath, args):
    speedup = require(fresh, fpath, "sa_incremental_speedup")
    if not isinstance(speedup, (int, float)) or isinstance(
        speedup, bool
    ):
        fail_input(
            f"{fpath}: sa_incremental_speedup is not a number; "
            f"regenerate the file with ./build/perf_placement"
        )
    print(
        f"sa_incremental_speedup: fresh {speedup:.2f}x "
        f"(floor {SA_INCREMENTAL_SPEEDUP_FLOOR:.1f}x)"
    )
    if speedup < SA_INCREMENTAL_SPEEDUP_FLOOR:
        print(
            "FAIL: incremental SA speedup fell below the "
            f"{SA_INCREMENTAL_SPEEDUP_FLOOR:.1f}x floor"
        )
        return False
    return True


def gate_churn_latency(committed, fresh, cpath, fpath, args):
    """Fresh vs. committed churn p99 (both per-job-normalized, so the
    ratio is machine-portable modulo core count)."""
    base = require(committed, cpath, "churn.latency_p99_normalized")
    now = require(fresh, fpath, "churn.latency_p99_normalized")
    if (
        not isinstance(base, (int, float))
        or isinstance(base, bool)
        or base <= 0.0
    ):
        fail_input(
            f"{cpath}: churn.latency_p99_normalized is not a positive "
            f"number; regenerate the baseline with ./build/perf_service"
        )
    ratio = now / base
    print(
        f"churn.latency_p99_normalized: committed {base:.2f}, fresh "
        f"{now:.2f}, ratio {ratio:.3f} (threshold "
        f"{CHURN_LATENCY_THRESHOLD:.2f})"
    )
    if ratio > CHURN_LATENCY_THRESHOLD:
        print("FAIL: churn p99 latency regressed beyond the threshold")
        return False
    return True


def scaling_curves(doc, path):
    """{family: {num_qubits: point}} from a scaling-sweep document."""
    families = require(doc, path, "families")
    if not isinstance(families, list):
        fail_input(f"{path}: 'families' is not an array")
    curves = {}
    for fam in families:
        try:
            curves[fam["family"]] = {
                p["num_qubits"]: p for p in fam["points"]
            }
        except (KeyError, TypeError) as e:
            fail_input(
                f"{path}: malformed scaling family entry ({e!r}); "
                f"regenerate the file with ./build/perf_scaling"
            )
    return curves


def fit_exponent(sizes, seconds):
    """Least-squares slope of log(seconds) vs log(qubits); mirrors
    fitExponent() in bench/perf_scaling.cpp."""
    if len(sizes) < 2:
        return 0.0
    xs = [math.log(n) for n in sizes]
    ys = [math.log(max(s, 1e-7)) for s in seconds]
    n = len(xs)
    sx, sy = sum(xs), sum(ys)
    sxx = sum(x * x for x in xs)
    sxy = sum(x * y for x, y in zip(xs, ys))
    denom = n * sxx - sx * sx
    return (n * sxy - sx * sy) / denom if denom else 0.0


def point_seconds(point, path, key):
    found, value = lookup(point, key)
    if (
        not found
        or not isinstance(value, (int, float))
        or isinstance(value, bool)
        or value < 0
    ):
        fail_input(
            f"{path}: scaling point (n={point.get('num_qubits')}) has "
            f"no usable {key!r}; regenerate with ./build/perf_scaling"
        )
    return value


def gate_scaling_curves(committed, fresh, cpath, fpath, args):
    """The two scaling gates: normalized per-point regressions and
    refitted asymptotic-exponent blowups, per family and per phase."""
    ok = True
    ccurves = scaling_curves(committed, cpath)
    fcurves = scaling_curves(fresh, fpath)
    for family, fpoints in fcurves.items():
        if family not in ccurves:
            print(f"note: family {family!r} has no committed baseline "
                  f"yet; skipping")
            continue
        cpoints = ccurves[family]
        common = sorted(set(cpoints) & set(fpoints))
        if len(common) < 2:
            print(f"note: family {family!r} shares fewer than 2 sizes "
                  f"with the baseline; skipping")
            continue

        csecs = [point_seconds(cpoints[n], cpath, "compile_seconds")
                 for n in common]
        fsecs = [point_seconds(fpoints[n], fpath, "compile_seconds")
                 for n in common]

        # Point gate: normalize each curve by its own smallest common
        # point so machine speed cancels out of the ratio.
        cbase, fbase = csecs[0], fsecs[0]
        if cbase > 0.0 and fbase > 0.0:
            for i in range(1, len(common)):
                if (csecs[i] < SCALING_MIN_GATE_SECONDS
                        and fsecs[i] < SCALING_MIN_GATE_SECONDS):
                    continue
                ratio = (fsecs[i] / fbase) / (csecs[i] / cbase)
                if ratio > SCALING_POINT_THRESHOLD:
                    print(
                        f"FAIL: {family} n={common[i]}: normalized "
                        f"compile time {ratio:.2f}x the committed "
                        f"curve (threshold "
                        f"{SCALING_POINT_THRESHOLD:.2f})"
                    )
                    ok = False

        # Exponent gate: refit both files on the common sizes so a
        # --fast fresh sweep compares against the same point set.
        cexp = fit_exponent(common, csecs)
        fexp = fit_exponent(common, fsecs)
        print(
            f"{family}: exponent committed {cexp:.2f}, fresh "
            f"{fexp:.2f} over n={common} (margin "
            f"{SCALING_EXPONENT_MARGIN:.2f})"
        )
        if fexp > cexp + SCALING_EXPONENT_MARGIN:
            print(
                f"FAIL: {family}: asymptotic exponent blew up "
                f"({cexp:.2f} -> {fexp:.2f})"
            )
            ok = False
        for phase in SCALING_PHASE_KEYS:
            cph = [point_seconds(cpoints[n], cpath,
                                 f"phase_totals.{phase}")
                   for n in common]
            fph = [point_seconds(fpoints[n], fpath,
                                 f"phase_totals.{phase}")
                   for n in common]
            # Phases too cheap to time reliably fit as noise: only
            # gate a phase that costs real time at the largest size.
            if (cph[-1] < SCALING_MIN_GATE_SECONDS
                    or fph[-1] < SCALING_MIN_GATE_SECONDS):
                continue
            cpe = fit_exponent(common, cph)
            fpe = fit_exponent(common, fph)
            if fpe > cpe + SCALING_EXPONENT_MARGIN:
                print(
                    f"FAIL: {family}: phase {phase} exponent blew up "
                    f"({cpe:.2f} -> {fpe:.2f})"
                )
                ok = False
    return ok


def gate_scaling_reach(committed, fresh, cpath, fpath, args):
    reach = require(fresh, fpath, "max_point_qubits")
    if not isinstance(reach, (int, float)) or isinstance(reach, bool):
        fail_input(f"{fpath}: max_point_qubits is not a number")
    if reach < SCALING_MIN_POINT_QUBITS:
        print(
            f"FAIL: scaling sweep reached only {int(reach)} qubits "
            f"(must include a >= {SCALING_MIN_POINT_QUBITS}-qubit "
            f"point)"
        )
        return False
    return True


# -------------------------------------------------------- summary tables


def fmt_ratio(committed, fresh):
    """Fresh/committed as a cell, or n/a when not comparable."""
    if (
        isinstance(committed, (int, float))
        and isinstance(fresh, (int, float))
        and committed > 0
    ):
        return f"{fresh / committed:.3f}"
    return "n/a"


def summary_rows_placement(committed, fresh):
    headline = (
        "compile_total_seconds",
        "sa_geomean_speedup",
        "sa_incremental_speedup",
        "dynamic_geomean_speedup",
        "sched_fid_geomean_speedup",
    )
    rows = []
    for key in headline:
        if key in committed or key in fresh:
            rows.append((key, committed.get(key), fresh.get(key)))
    phase_keys = (
        "sa_seconds",
        "reuse_matching_seconds",
        "gate_placement_seconds",
        "movement_seconds",
        "scheduling_seconds",
        "fidelity_seconds",
    )
    cp = committed.get("phase_totals", {})
    fp = fresh.get("phase_totals", {})
    for key in phase_keys:
        if key in cp or key in fp:
            rows.append((f"phase: {key}", cp.get(key), fp.get(key)))
    return rows


def summary_rows_service(committed, fresh):
    rows = [
        (
            "scaling_overhead",
            committed.get("scaling_overhead"),
            fresh.get("scaling_overhead"),
        ),
        (
            "sequential_jobs_per_second",
            committed.get("sequential_jobs_per_second"),
            fresh.get("sequential_jobs_per_second"),
        ),
        (
            "parallel_seconds_at_max",
            committed.get("parallel_seconds_at_max"),
            fresh.get("parallel_seconds_at_max"),
        ),
    ]
    cc = committed.get("chaos", {})
    fc = fresh.get("chaos", {})
    for key in ("retries", "coalesced_served",
                "snapshot_records_loaded", "warm_cache_hits"):
        if key in cc or key in fc:
            rows.append((f"chaos: {key}", cc.get(key), fc.get(key)))
    cu = committed.get("churn", {})
    fu = fresh.get("churn", {})
    for key in ("latency_p50_seconds", "latency_p99_seconds",
                "latency_p99_normalized", "cache_hits", "failures"):
        if key in cu or key in fu:
            rows.append((f"churn: {key}", cu.get(key), fu.get(key)))
    cw = committed.get("warm_vs_cold", {})
    fw = fresh.get("warm_vs_cold", {})
    for key in ("cold_jobs_per_second", "warm_jobs_per_second",
                "speedup"):
        if key in cw or key in fw:
            rows.append(
                (f"warm_vs_cold: {key}", cw.get(key), fw.get(key))
            )
    return [r for r in rows if r[1] is not None or r[2] is not None]


def summary_rows_scaling(committed, fresh):
    """Per-family stored exponents plus the largest common point."""
    rows = []
    ccurves = {f.get("family"): f
               for f in committed.get("families", [])}
    for fam in fresh.get("families", []):
        family = fam.get("family")
        cfam = ccurves.get(family, {})
        rows.append(
            (f"{family}: exponent", cfam.get("exponent"),
             fam.get("exponent"))
        )
        cpoints = {p.get("num_qubits"): p
                   for p in cfam.get("points", [])}
        fpoints = {p.get("num_qubits"): p
                   for p in fam.get("points", [])}
        common = sorted(set(cpoints) & set(fpoints))
        if common:
            n = common[-1]
            rows.append((
                f"{family}: compile_seconds @ n={n}",
                cpoints[n].get("compile_seconds"),
                fpoints[n].get("compile_seconds"),
            ))
    rows.append((
        "max_point_qubits",
        committed.get("max_point_qubits"),
        fresh.get("max_point_qubits"),
    ))
    return rows


# ------------------------------------------------------- schema registry


class SchemaSpec:
    """One row of the per-schema gate table."""

    def __init__(self, metric=None, metric_name=None, flag_keys=(),
                 summary_rows=None, extra_gates=()):
        self.metric = metric              # (doc, path) -> float, or None
        self.metric_name = metric_name
        self.flag_keys = tuple(flag_keys)  # dotted paths, all required
        self.summary_rows = summary_rows   # (committed, fresh) -> rows
        self.extra_gates = tuple(extra_gates)


_PLACEMENT_FLAGS_V1 = ("sa_outputs_identical",)
_PLACEMENT_FLAGS_V2 = _PLACEMENT_FLAGS_V1 + ("dynamic_outputs_identical",)
_PLACEMENT_FLAGS_V3 = _PLACEMENT_FLAGS_V2 + (
    "sched_fid_outputs_identical",
)
_PLACEMENT_FLAGS_V4 = _PLACEMENT_FLAGS_V3 + (
    "sa_multi_seed_deterministic",
)
_SERVICE_FLAGS_V1 = (
    "outputs_identical",
    "cache.second_round_all_hits",
)
_SERVICE_FLAGS_V2 = _SERVICE_FLAGS_V1 + (
    "chaos.terminal_records_exactly_once",
    "chaos.outputs_identical",
    "chaos.warm_start_served_from_snapshot",
    "chaos.corruption_tolerated",
)
_SERVICE_FLAGS_V3 = _SERVICE_FLAGS_V2 + (
    "churn.exactly_once_per_connection",
    "churn.outputs_identical_offline",
    "churn.drained_clean",
)
_SERVICE_FLAGS_V4 = _SERVICE_FLAGS_V3 + (
    "streamed_vs_dom.identical",
    "warm_vs_cold.deterministic",
)


def _placement_spec(flag_keys, extra_gates=()):
    return SchemaSpec(
        metric=placement_metric,
        metric_name="compile_total_seconds (legacy-SA-normalized)",
        flag_keys=flag_keys,
        summary_rows=summary_rows_placement,
        extra_gates=extra_gates,
    )


def _service_spec(flag_keys, extra_gates=()):
    return SchemaSpec(
        metric=service_metric,
        metric_name="scaling_overhead (ideal-scaling-normalized)",
        flag_keys=flag_keys,
        summary_rows=summary_rows_service,
        extra_gates=extra_gates,
    )


SCHEMAS = {
    "zac.perf_placement.v1": _placement_spec(_PLACEMENT_FLAGS_V1),
    "zac.perf_placement.v2": _placement_spec(_PLACEMENT_FLAGS_V2),
    "zac.perf_placement.v3": _placement_spec(_PLACEMENT_FLAGS_V3),
    "zac.perf_placement.v4": _placement_spec(
        _PLACEMENT_FLAGS_V4, (gate_sa_incremental_floor,)
    ),
    "zac.perf_service.v1": _service_spec(_SERVICE_FLAGS_V1),
    "zac.perf_service.v2": _service_spec(_SERVICE_FLAGS_V2),
    "zac.perf_service.v3": _service_spec(
        _SERVICE_FLAGS_V3, (gate_churn_latency,)
    ),
    "zac.perf_service.v4": _service_spec(
        _SERVICE_FLAGS_V4, (gate_churn_latency,)
    ),
    "zac.perf_scaling.v1": SchemaSpec(
        metric=None,
        metric_name="scaling curves (per-family, machine-normalized)",
        flag_keys=("streamed_vs_dom_identical", "deterministic"),
        summary_rows=summary_rows_scaling,
        extra_gates=(gate_scaling_reach, gate_scaling_curves),
    ),
}


def load(path, want_schema):
    """Load one benchmark JSON, failing with a clear message (never a
    traceback) when the file is missing, malformed, or carries an
    unexpected schema tag."""
    if not os.path.exists(path):
        fail_input(
            f"{path}: baseline/benchmark JSON not found. Generate it "
            f"with ./build/perf_placement, ./build/perf_service or "
            f"./build/perf_scaling (see bench/README.md) and commit "
            f"the baseline."
        )
    try:
        with open(path) as f:
            doc = json.load(f)
    except json.JSONDecodeError as e:
        fail_input(f"{path}: not valid JSON ({e})")
    if not isinstance(doc, dict):
        fail_input(f"{path}: expected a JSON object at top level")

    schema = doc.get("schema")
    if schema is None:
        fail_input(f"{path}: missing 'schema' field")
    if want_schema is not None:
        if schema != want_schema:
            fail_input(
                f"{path}: schema mismatch: found {schema!r}, expected "
                f"{want_schema!r} (is this the right baseline file, or "
                f"does the baseline predate a schema bump? regenerate "
                f"and re-commit it if so)"
            )
    elif schema not in SCHEMAS:
        fail_input(
            f"{path}: unknown schema {schema!r}; this script "
            f"understands {', '.join(sorted(SCHEMAS))}"
        )
    return doc


def write_step_summary(schema, spec, committed, fresh, metric_line,
                       flags, ok):
    """Append a markdown comparison table to $GITHUB_STEP_SUMMARY (no-op
    outside GitHub Actions) so perf drift is visible in the run summary
    without downloading artifacts."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [
        f"### Perf gate: `{schema}` — {'PASS' if ok else 'FAIL'}",
        "",
    ]
    if metric_line:
        lines += [metric_line, ""]
    lines += [
        "| metric | committed | fresh | fresh/committed |",
        "| --- | ---: | ---: | ---: |",
    ]
    for label, c, f in spec.summary_rows(committed, fresh):
        c_cell = f"{c:.4f}" if isinstance(c, (int, float)) else "—"
        f_cell = f"{f:.4f}" if isinstance(f, (int, float)) else "—"
        lines.append(
            f"| {label} | {c_cell} | {f_cell} | {fmt_ratio(c, f)} |"
        )
    flag_cells = ", ".join(
        f"`{k}`={'true' if v else '**false**'}"
        for k, v in flags.items()
    )
    lines += ["", f"Semantics flags (fresh run): {flag_cells}", ""]
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n")


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--schema",
        help="require this exact schema tag in both files "
        "(default: the committed file's tag)",
    )
    parser.add_argument("committed", help="committed baseline JSON")
    parser.add_argument("fresh", help="freshly measured JSON")
    parser.add_argument(
        "threshold",
        nargs="?",
        type=float,
        default=1.25,
        help="max allowed fresh/committed metric ratio (default 1.25)",
    )
    args = parser.parse_args(argv[1:])

    if args.schema is not None and args.schema not in SCHEMAS:
        fail_input(
            f"--schema {args.schema!r} is not supported; choose from "
            f"{', '.join(sorted(SCHEMAS))}"
        )

    committed = load(args.committed, args.schema)
    # Both files must agree on the schema even without --schema.
    fresh = load(args.fresh, args.schema or committed["schema"])
    schema = committed["schema"]
    spec = SCHEMAS[schema]

    ok = True
    flags = gated_flags(fresh, args.fresh, spec.flag_keys)
    for key, value in flags.items():
        if not value:
            print(f"FAIL: fresh run reports {key} == false")
            ok = False

    metric_line = None
    if spec.metric is not None:
        base = spec.metric(committed, args.committed)
        now = spec.metric(fresh, args.fresh)
        if base <= 0.0:
            fail_input(
                f"{args.committed}: committed metric is {base}; "
                f"cannot compute a regression ratio — regenerate the "
                f"baseline"
            )
        ratio = now / base
        metric_line = (
            f"Gated metric **{spec.metric_name}**: committed "
            f"{base:.4f}, fresh {now:.4f}, ratio {ratio:.3f} "
            f"(threshold {args.threshold:.2f})"
        )
        print(
            f"{spec.metric_name}: committed {base:.4f}, fresh "
            f"{now:.4f}, ratio {ratio:.3f} (threshold "
            f"{args.threshold:.2f})"
        )
        if ratio > args.threshold:
            print("FAIL: perf metric regressed beyond the threshold")
            ok = False

    for gate in spec.extra_gates:
        if not gate(committed, fresh, args.committed, args.fresh,
                    args):
            ok = False

    write_step_summary(schema, spec, committed, fresh, metric_line,
                       flags, ok)

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
