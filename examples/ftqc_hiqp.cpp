/**
 * @file
 * Fault-tolerant compilation example (paper Sec. VIII): compile the
 * hypercube IQP circuit on [[8,3,2]] code blocks at the logical level
 * and inspect how ZAC moves whole code blocks to realize transversal
 * CNOTs.
 *
 *   $ ./ftqc_hiqp [num_blocks]     (power of two, default 32)
 */

#include <cstdio>
#include <cstdlib>

#include "arch/presets.hpp"
#include "core/compiler.hpp"
#include "ftqc/code832.hpp"
#include "ftqc/hiqp.hpp"
#include "ftqc/logical.hpp"

int
main(int argc, char **argv)
{
    using namespace zac;
    using namespace zac::ftqc;

    const int blocks = argc > 1 ? std::atoi(argv[1]) : 32;

    // The [[8,3,2]] block: 8 physical qubits in 2x4, 3 logical qubits.
    std::printf("[[8,3,2]] block: %d physical qubits (%dx%d), %d "
                "logical qubits, distance %d\n",
                Code832::kPhysicalQubits, Code832::kRows,
                Code832::kCols, Code832::kLogicalQubits,
                Code832::kDistance);

    const HiqpCircuit circuit = makeHiqpCircuit(blocks);
    std::printf("hIQP instance: %d blocks = %d logical qubits, %d "
                "in-block layers, %d CNOT layers (stride 1..%d), %d "
                "transversal CNOTs\n\n",
                circuit.num_blocks, circuit.numLogicalQubits(),
                circuit.numInBlockLayers(), circuit.numCnotLayers(),
                circuit.num_blocks / 2,
                circuit.numTransversalCnots());

    // Compile at block level: each block is one movable unit; the
    // logical architecture scales the reference machine's entanglement
    // zone down to floor(7/2) x floor(20/4) = 3x5 block sites.
    const Architecture arch = presets::logicalBlockArch();
    ZacOptions opts;
    opts.sa_iterations = 400;
    const FtqcResult result = compileHiqp(circuit, arch, opts);

    std::printf("compiled with ZAC on '%s' (%d logical sites):\n",
                arch.name().c_str(), result.logical_sites);
    std::printf("  Rydberg stages      %d\n", result.rydberg_stages);
    std::printf("  block reuses        %d\n",
                result.zac.plan.reused_qubits);
    std::printf("  physical duration   %.2f ms\n", result.duration_ms);
    std::printf("  physical qubits     %d\n", result.physical_qubits);

    // Show the first transversal CNOT as physical qubit pairs.
    const auto pairs =
        transversalCnotPairs(0, 1, Code832::kPhysicalQubits);
    std::printf("\nfirst inter-block CNOT = physical CNOTs on pairs:");
    for (const auto &[a, b] : pairs)
        std::printf(" (%d,%d)", a, b);
    std::printf("\n");

    if (blocks == 128)
        std::printf("\npaper reference for 128 blocks: 35 Rydberg "
                    "stages, 117.847 ms\n");
    return 0;
}
