/**
 * @file
 * zac_batch: the batch-compile frontend over the CompileService.
 *
 * Reads a JSON manifest of circuits (QASM paths or built-in paper
 * benchmarks) and compile targets (architecture + option presets),
 * drives the work-queue service, and streams one JSONL record per
 * finished job — results are written as workers complete them, not
 * after the batch ends. See docs/zac_batch.md for the manifest format
 * and protocol.
 *
 *   usage: zac_batch <manifest.json> [options]
 *     --out <file>    write JSONL records to a file (default stdout)
 *     --workers N     worker threads (default: hardware concurrency)
 *     --queue N       job-queue bound (default 256)
 *     --cache N       result-cache entries, 0 disables (default 1024)
 *     --repeat N      run the whole manifest N times, draining between
 *                     rounds (round 2+ should be served by the cache)
 *     --dedup         drop exact duplicate jobs within a round (same
 *                     circuit content hash, target, seed, timeout)
 *     --no-zair       omit the ZAIR program from result records
 *     --echo-submit   also write a "submit" record per accepted job
 *     --snapshot <f>  persist the result cache to <f> (loaded on
 *                     start, flushed on drain — warm restarts)
 *     --retries N     transient-failure retries per job (default 2)
 *     --backoff-ms X  first retry backoff, doubling per attempt
 *     --admission N   reject submissions past N undelivered jobs with
 *                     an "overloaded" record (0 = block instead)
 *     --drain-timeout S  graceful-stop deadline in seconds; in-flight
 *                     jobs outlasting it are cancelled (0 = wait)
 *     --stats-record  append one "stats" JSONL record after the drain
 *                     (service counters, cache, warm-context pool)
 *
 * When --out is a file, the written JSONL is re-read and verified after
 * the drain: a malformed line or a job without exactly one terminal
 * record is a hard error (exit 2), never a silent skip.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <set>
#include <tuple>

#include "common/json.hpp"
#include "common/logging.hpp"
#include "service/manifest.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: zac_batch <manifest.json> [--out file] [--workers N]\n"
        "                 [--queue N] [--cache N] [--repeat N]\n"
        "                 [--dedup] [--no-zair] [--echo-submit]\n"
        "                 [--snapshot file] [--retries N]\n"
        "                 [--backoff-ms X] [--admission N]\n"
        "                 [--drain-timeout S] [--stats-record]\n");
}

/**
 * Re-read the JSONL stream zac_batch just wrote and check the delivery
 * invariant end to end: every line parses, every record type is known,
 * and every submitted job id has EXACTLY ONE terminal (result/error)
 * record. Throws FatalError on the first violation — a half-written
 * results file must fail the batch, not silently under-report.
 */
void
verifyOutputFile(const std::string &path, std::uint64_t expected_jobs)
{
    using zac::json::Value;
    std::ifstream in(path);
    if (!in)
        zac::fatal("zac_batch: cannot re-open " + path +
                   " for verification");
    std::map<std::uint64_t, int> terminal_counts;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            zac::fatal("zac_batch: " + path + ":" +
                       std::to_string(line_no) + ": empty JSONL line");
        Value rec;
        try {
            rec = zac::json::parse(line);
        } catch (const std::exception &e) {
            zac::fatal("zac_batch: " + path + ":" +
                       std::to_string(line_no) +
                       ": malformed JSONL line: " + e.what());
        }
        const std::string &type = rec.at("type").asString();
        if (type == "submit" || type == "stats")
            continue;
        if (type != "result" && type != "error")
            zac::fatal("zac_batch: " + path + ":" +
                       std::to_string(line_no) +
                       ": unknown record type '" + type + "'");
        if (!zac::service::jobStatusFromName(
                rec.at("status").asString()))
            zac::fatal("zac_batch: " + path + ":" +
                       std::to_string(line_no) +
                       ": unknown job status '" +
                       rec.at("status").asString() + "'");
        const std::uint64_t id =
            static_cast<std::uint64_t>(rec.at("job_id").asInt());
        if (++terminal_counts[id] > 1)
            zac::fatal("zac_batch: " + path + ": job " +
                       std::to_string(id) +
                       " has more than one terminal record");
    }
    if (terminal_counts.size() != expected_jobs)
        zac::fatal("zac_batch: " + path + ": expected " +
                   std::to_string(expected_jobs) +
                   " terminal records, found " +
                   std::to_string(terminal_counts.size()));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace zac;
    using namespace zac::service;

    if (argc < 2) {
        usage();
        return 1;
    }
    std::string manifest_path = argv[1];
    std::string out_path;
    int workers = 0;
    std::size_t queue_capacity = 256;
    std::size_t cache_capacity = 1024;
    int rounds = 1;
    bool dedup = false;
    bool include_zair = true;
    bool echo_submit = false;
    bool stats_record = false;
    std::string snapshot_path;
    int max_retries = 2;
    double backoff_ms = 1.0;
    std::size_t admission = 0;
    double drain_timeout = 0.0;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc)
            out_path = argv[++i];
        else if (arg == "--workers" && i + 1 < argc)
            workers = std::atoi(argv[++i]);
        else if (arg == "--queue" && i + 1 < argc)
            queue_capacity =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (arg == "--cache" && i + 1 < argc)
            cache_capacity =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (arg == "--repeat" && i + 1 < argc)
            rounds = std::atoi(argv[++i]);
        else if (arg == "--snapshot" && i + 1 < argc)
            snapshot_path = argv[++i];
        else if (arg == "--retries" && i + 1 < argc)
            max_retries = std::atoi(argv[++i]);
        else if (arg == "--backoff-ms" && i + 1 < argc)
            backoff_ms = std::atof(argv[++i]);
        else if (arg == "--admission" && i + 1 < argc)
            admission =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (arg == "--drain-timeout" && i + 1 < argc)
            drain_timeout = std::atof(argv[++i]);
        else if (arg == "--dedup")
            dedup = true;
        else if (arg == "--no-zair")
            include_zair = false;
        else if (arg == "--echo-submit")
            echo_submit = true;
        else if (arg == "--stats-record")
            stats_record = true;
        else {
            usage();
            return 1;
        }
    }
    if (rounds < 1)
        rounds = 1;

    try {
        Manifest manifest = loadManifest(manifest_path);

        std::ofstream file;
        if (!out_path.empty()) {
            file.open(out_path);
            if (!file)
                fatal("zac_batch: cannot open output file " + out_path);
        }
        std::ostream &out = out_path.empty() ? std::cout : file;

        std::vector<std::string> target_names;
        for (const CompileTarget &t : manifest.targets)
            target_names.push_back(t.name);

        // Tallies, updated from the sink. The service serializes sink
        // calls against each other, but with --echo-submit the main
        // thread also writes to `out` concurrently, so every write
        // (and tally) goes through this mutex.
        std::mutex out_mutex;
        std::uint64_t n_done = 0, n_failed = 0, n_cancelled = 0;
        std::uint64_t n_timed_out = 0, n_overloaded = 0;
        std::uint64_t n_cache_hits = 0;

        CompileService::Config config;
        config.num_workers = workers;
        config.queue_capacity = queue_capacity;
        config.cache_capacity = cache_capacity;
        config.snapshot_path = snapshot_path;
        config.max_retries = max_retries;
        config.retry_backoff_ms = backoff_ms;
        config.admission_high_water = admission;
        CompileService svc(
            manifest.targets, config,
            [&](const JobRecord &r) {
                std::lock_guard<std::mutex> lock(out_mutex);
                switch (r.status) {
                  case JobStatus::Done: ++n_done; break;
                  case JobStatus::Failed: ++n_failed; break;
                  case JobStatus::Cancelled: ++n_cancelled; break;
                  case JobStatus::TimedOut: ++n_timed_out; break;
                  case JobStatus::Overloaded: ++n_overloaded; break;
                }
                if (r.cache_hit)
                    ++n_cache_hits;
                writeJobRecordJsonl(
                    out, r,
                    target_names[static_cast<std::size_t>(r.target)],
                    include_zair);
                out.flush();
            });

        // Pre-hash each manifest job once: used for dedup and the
        // optional submit records.
        std::vector<std::uint64_t> job_hashes;
        for (const ManifestJob &j : manifest.jobs)
            job_hashes.push_back(j.circuit.contentHash());

        const auto t0 = std::chrono::steady_clock::now();
        std::uint64_t submitted = 0, deduped = 0;
        for (int round = 0; round < rounds; ++round) {
            // (hash, target, has-seed, seed, timeout) per round.
            std::set<std::tuple<std::uint64_t, int, bool,
                                std::uint64_t, double>>
                seen;
            for (std::size_t ji = 0; ji < manifest.jobs.size(); ++ji) {
                const ManifestJob &j = manifest.jobs[ji];
                for (int rep = 0; rep < j.repeat; ++rep) {
                    if (dedup) {
                        const auto key = std::make_tuple(
                            job_hashes[ji], j.target,
                            j.seed.has_value(),
                            j.seed.value_or(0),
                            j.timeout_seconds);
                        if (!seen.insert(key).second) {
                            ++deduped;
                            continue;
                        }
                    }
                    CompileService::Submission s;
                    s.name = j.label;
                    s.circuit = j.circuit;
                    s.target = j.target;
                    s.seed = j.seed;
                    s.timeout_seconds = j.timeout_seconds;
                    const std::uint64_t id = svc.submit(std::move(s));
                    ++submitted;
                    if (echo_submit) {
                        std::lock_guard<std::mutex> lock(out_mutex);
                        out << toJsonl(makeSubmitRecord(
                            id, j.label,
                            target_names[static_cast<std::size_t>(
                                j.target)],
                            job_hashes[ji]));
                        out.flush();
                    }
                }
            }
            // Drain between rounds so later rounds hit the cache of
            // earlier ones deterministically.
            svc.drain();
        }
        const bool drained_clean = svc.drainAndStop(drain_timeout);
        if (!drained_clean)
            std::fprintf(stderr,
                         "zac_batch: drain deadline (%.3f s) expired; "
                         "remaining jobs were cancelled\n",
                         drain_timeout);
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();

        if (stats_record) {
            // After the drain every sink call has completed, so the
            // counters are final; still take the mutex for the write.
            std::lock_guard<std::mutex> lock(out_mutex);
            out << toJsonl(makeStatsRecord(svc.serviceStats()));
            out.flush();
        }

        const ResultCache::Stats cs = svc.cacheStats();
        const CompileService::Stats ss = svc.stats();
        std::fprintf(
            stderr,
            "zac_batch: %llu jobs (%d round%s, %llu deduped) on %d "
            "workers in %.3f s = %.2f jobs/s\n"
            "           done %llu, failed %llu, cancelled %llu, "
            "timed out %llu, overloaded %llu; cache hits %llu "
            "(rate %.2f, %zu entries)\n"
            "           retries %llu (exhausted %llu), coalesced "
            "%llu served + %llu requeued; snapshot %llu loaded / "
            "%llu skipped / %llu written\n",
            static_cast<unsigned long long>(submitted), rounds,
            rounds == 1 ? "" : "s",
            static_cast<unsigned long long>(deduped),
            svc.numWorkers(), wall,
            wall > 0.0 ? static_cast<double>(submitted) / wall : 0.0,
            static_cast<unsigned long long>(n_done),
            static_cast<unsigned long long>(n_failed),
            static_cast<unsigned long long>(n_cancelled),
            static_cast<unsigned long long>(n_timed_out),
            static_cast<unsigned long long>(n_overloaded),
            static_cast<unsigned long long>(n_cache_hits),
            cs.hitRate(), cs.entries,
            static_cast<unsigned long long>(ss.retries),
            static_cast<unsigned long long>(ss.retries_exhausted),
            static_cast<unsigned long long>(ss.coalesced_served),
            static_cast<unsigned long long>(ss.coalesced_requeued),
            static_cast<unsigned long long>(
                ss.snapshot_records_loaded),
            static_cast<unsigned long long>(
                ss.snapshot_records_skipped),
            static_cast<unsigned long long>(
                ss.snapshot_records_written));

        if (!out_path.empty()) {
            out.flush();
            file.close();
            verifyOutputFile(out_path, submitted);
        }
        return n_failed == 0 ? 0 : 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "zac_batch: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        // Backstop: never let a raw exception reach std::terminate.
        std::fprintf(stderr, "zac_batch: unexpected error: %s\n",
                     e.what());
        return 2;
    }
}
