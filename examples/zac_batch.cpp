/**
 * @file
 * zac_batch: the batch-compile frontend over the CompileService.
 *
 * Reads a JSON manifest of circuits (QASM paths or built-in paper
 * benchmarks) and compile targets (architecture + option presets),
 * drives the work-queue service, and streams one JSONL record per
 * finished job — results are written as workers complete them, not
 * after the batch ends. See docs/zac_batch.md for the manifest format
 * and protocol.
 *
 *   usage: zac_batch <manifest.json> [options]
 *     --out <file>    write JSONL records to a file (default stdout)
 *     --workers N     worker threads (default: hardware concurrency)
 *     --queue N       job-queue bound (default 256)
 *     --cache N       result-cache entries, 0 disables (default 1024)
 *     --repeat N      run the whole manifest N times, draining between
 *                     rounds (round 2+ should be served by the cache)
 *     --dedup         drop exact duplicate jobs within a round (same
 *                     circuit content hash, target, seed, timeout)
 *     --no-zair       omit the ZAIR program from result records
 *     --echo-submit   also write a "submit" record per accepted job
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <set>
#include <tuple>

#include "common/logging.hpp"
#include "service/manifest.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: zac_batch <manifest.json> [--out file] [--workers N]\n"
        "                 [--queue N] [--cache N] [--repeat N]\n"
        "                 [--dedup] [--no-zair] [--echo-submit]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace zac;
    using namespace zac::service;

    if (argc < 2) {
        usage();
        return 1;
    }
    std::string manifest_path = argv[1];
    std::string out_path;
    int workers = 0;
    std::size_t queue_capacity = 256;
    std::size_t cache_capacity = 1024;
    int rounds = 1;
    bool dedup = false;
    bool include_zair = true;
    bool echo_submit = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc)
            out_path = argv[++i];
        else if (arg == "--workers" && i + 1 < argc)
            workers = std::atoi(argv[++i]);
        else if (arg == "--queue" && i + 1 < argc)
            queue_capacity =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (arg == "--cache" && i + 1 < argc)
            cache_capacity =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (arg == "--repeat" && i + 1 < argc)
            rounds = std::atoi(argv[++i]);
        else if (arg == "--dedup")
            dedup = true;
        else if (arg == "--no-zair")
            include_zair = false;
        else if (arg == "--echo-submit")
            echo_submit = true;
        else {
            usage();
            return 1;
        }
    }
    if (rounds < 1)
        rounds = 1;

    try {
        Manifest manifest = loadManifest(manifest_path);

        std::ofstream file;
        if (!out_path.empty()) {
            file.open(out_path);
            if (!file)
                fatal("zac_batch: cannot open output file " + out_path);
        }
        std::ostream &out = out_path.empty() ? std::cout : file;

        std::vector<std::string> target_names;
        for (const CompileTarget &t : manifest.targets)
            target_names.push_back(t.name);

        // Tallies, updated from the sink. The service serializes sink
        // calls against each other, but with --echo-submit the main
        // thread also writes to `out` concurrently, so every write
        // (and tally) goes through this mutex.
        std::mutex out_mutex;
        std::uint64_t n_done = 0, n_failed = 0, n_cancelled = 0;
        std::uint64_t n_timed_out = 0, n_cache_hits = 0;

        CompileService::Config config;
        config.num_workers = workers;
        config.queue_capacity = queue_capacity;
        config.cache_capacity = cache_capacity;
        CompileService svc(
            manifest.targets, config,
            [&](const JobRecord &r) {
                std::lock_guard<std::mutex> lock(out_mutex);
                switch (r.status) {
                  case JobStatus::Done: ++n_done; break;
                  case JobStatus::Failed: ++n_failed; break;
                  case JobStatus::Cancelled: ++n_cancelled; break;
                  case JobStatus::TimedOut: ++n_timed_out; break;
                }
                if (r.cache_hit)
                    ++n_cache_hits;
                writeJobRecordJsonl(
                    out, r,
                    target_names[static_cast<std::size_t>(r.target)],
                    include_zair);
                out.flush();
            });

        // Pre-hash each manifest job once: used for dedup and the
        // optional submit records.
        std::vector<std::uint64_t> job_hashes;
        for (const ManifestJob &j : manifest.jobs)
            job_hashes.push_back(j.circuit.contentHash());

        const auto t0 = std::chrono::steady_clock::now();
        std::uint64_t submitted = 0, deduped = 0;
        for (int round = 0; round < rounds; ++round) {
            // (hash, target, has-seed, seed, timeout) per round.
            std::set<std::tuple<std::uint64_t, int, bool,
                                std::uint64_t, double>>
                seen;
            for (std::size_t ji = 0; ji < manifest.jobs.size(); ++ji) {
                const ManifestJob &j = manifest.jobs[ji];
                for (int rep = 0; rep < j.repeat; ++rep) {
                    if (dedup) {
                        const auto key = std::make_tuple(
                            job_hashes[ji], j.target,
                            j.seed.has_value(),
                            j.seed.value_or(0),
                            j.timeout_seconds);
                        if (!seen.insert(key).second) {
                            ++deduped;
                            continue;
                        }
                    }
                    CompileService::Submission s;
                    s.name = j.label;
                    s.circuit = j.circuit;
                    s.target = j.target;
                    s.seed = j.seed;
                    s.timeout_seconds = j.timeout_seconds;
                    const std::uint64_t id = svc.submit(std::move(s));
                    ++submitted;
                    if (echo_submit) {
                        std::lock_guard<std::mutex> lock(out_mutex);
                        out << toJsonl(makeSubmitRecord(
                            id, j.label,
                            target_names[static_cast<std::size_t>(
                                j.target)],
                            job_hashes[ji]));
                        out.flush();
                    }
                }
            }
            // Drain between rounds so later rounds hit the cache of
            // earlier ones deterministically.
            svc.drain();
        }
        svc.shutdown();
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();

        const ResultCache::Stats cs = svc.cacheStats();
        std::fprintf(
            stderr,
            "zac_batch: %llu jobs (%d round%s, %llu deduped) on %d "
            "workers in %.3f s = %.2f jobs/s\n"
            "           done %llu, failed %llu, cancelled %llu, "
            "timed out %llu; cache hits %llu (rate %.2f, %zu "
            "entries)\n",
            static_cast<unsigned long long>(submitted), rounds,
            rounds == 1 ? "" : "s",
            static_cast<unsigned long long>(deduped),
            svc.numWorkers(), wall,
            wall > 0.0 ? static_cast<double>(submitted) / wall : 0.0,
            static_cast<unsigned long long>(n_done),
            static_cast<unsigned long long>(n_failed),
            static_cast<unsigned long long>(n_cancelled),
            static_cast<unsigned long long>(n_timed_out),
            static_cast<unsigned long long>(n_cache_hits),
            cs.hitRate(), cs.entries);
        return n_failed == 0 ? 0 : 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "zac_batch: %s\n", e.what());
        return 2;
    }
}
