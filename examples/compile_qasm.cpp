/**
 * @file
 * Command-line compiler: compile an OpenQASM 2.0 file (or a built-in
 * paper benchmark) for a zoned architecture and report fidelity.
 *
 *   usage: compile_qasm <circuit.qasm | benchmark-name>
 *                       [--arch <spec.json | reference | arch1 | arch2>]
 *                       [--aods N] [--no-sa] [--no-reuse] [--vanilla]
 *                       [--out zair.json]
 *
 * Examples:
 *   $ ./compile_qasm ghz_n40
 *   $ ./compile_qasm my_circuit.qasm --aods 2 --out routed.json
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "arch/presets.hpp"
#include "arch/serialize.hpp"
#include "circuit/generators.hpp"
#include "circuit/qasm_parser.hpp"
#include "common/logging.hpp"
#include "core/compiler.hpp"
#include "zair/serialize.hpp"

namespace
{

void
usage()
{
    std::printf(
        "usage: compile_qasm <circuit.qasm | benchmark> [options]\n"
        "  --arch <file.json|reference|arch1|arch2>  target (default "
        "reference)\n"
        "  --aods N       number of AODs on the reference arch\n"
        "  --no-sa        disable SA initial placement\n"
        "  --no-reuse     disable qubit reuse\n"
        "  --vanilla      trivial static placement (ablation "
        "baseline)\n"
        "  --out <file>   write the timed ZAIR program as JSON\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace zac;
    if (argc < 2) {
        usage();
        return 1;
    }

    std::string input = argv[1];
    std::string arch_name = "reference";
    std::string out_path;
    int aods = 1;
    ZacOptions opts = ZacOptions::full();
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--arch" && i + 1 < argc)
            arch_name = argv[++i];
        else if (arg == "--aods" && i + 1 < argc)
            aods = std::atoi(argv[++i]);
        else if (arg == "--no-sa")
            opts.use_sa_init = false;
        else if (arg == "--no-reuse")
            opts.use_reuse = false;
        else if (arg == "--vanilla")
            opts = ZacOptions::vanilla();
        else if (arg == "--out" && i + 1 < argc)
            out_path = argv[++i];
        else {
            usage();
            return 1;
        }
    }

    try {
        // Circuit: .qasm file or a built-in benchmark name.
        const bool is_file = input.size() > 5 &&
                             input.substr(input.size() - 5) == ".qasm";
        const Circuit circuit =
            is_file ? qasm::parseFile(input)
                    : bench_circuits::paperBenchmark(input);

        Architecture arch;
        if (arch_name == "reference")
            arch = presets::referenceZoned(aods);
        else if (arch_name == "arch1")
            arch = presets::multiZoneArch1();
        else if (arch_name == "arch2")
            arch = presets::multiZoneArch2();
        else
            arch = loadArchitecture(arch_name);

        ZacCompiler compiler(arch, opts);
        const ZacResult result = compiler.compile(circuit);
        const FidelityBreakdown &f = result.fidelity;
        const ZairStats stats = result.program.stats();

        std::printf("circuit        %s (%d qubits)\n",
                    circuit.name().c_str(), circuit.numQubits());
        std::printf("architecture   %s\n", arch.name().c_str());
        std::printf("gates          %d 2Q + %d 1Q in %d Rydberg "
                    "stages\n",
                    f.g2, f.g1, result.staged.numRydbergStages());
        std::printf("reuses         %d qubits across %d boundaries\n",
                    result.plan.reused_qubits,
                    result.plan.reuse_boundaries);
        std::printf("rearrangements %d jobs, %d atom transfers, "
                    "%.1f um total motion\n",
                    stats.num_rearrange_jobs, stats.num_atom_transfers,
                    stats.total_move_distance_um);
        std::printf("duration       %.3f ms\n", f.duration_us / 1e3);
        std::printf("fidelity       %.4f  (2Q %.4f | 1Q %.4f | "
                    "transfer %.4f | decoherence %.4f | excitation "
                    "%.4f)\n",
                    f.total, f.f_2q_gates, f.f_1q, f.f_transfer,
                    f.f_decoherence, f.f_excitation);
        std::printf("compile time   %.3f s\n", result.compile_seconds);
        if (!out_path.empty()) {
            saveZairProgram(out_path, result.program);
            std::printf("ZAIR written   %s\n", out_path.c_str());
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
