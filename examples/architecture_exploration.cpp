/**
 * @file
 * Architecture exploration: the workload-driven design loop the paper's
 * flexible specification enables (Sec. III, VII-G, VII-H).
 *
 * For a mixed workload (a sequential GHZ-style circuit, a parallel
 * Ising circuit and a dense QFT), this example sweeps:
 *   - the number of AODs on the reference architecture, and
 *   - single- versus double-entanglement-zone layouts,
 * then reports which configuration maximizes workload fidelity.
 */

#include <cstdio>
#include <vector>

#include "arch/presets.hpp"
#include "circuit/generators.hpp"
#include "core/compiler.hpp"
#include "fidelity/model.hpp"

int
main()
{
    using namespace zac;

    const std::vector<Circuit> workload = {
        bench_circuits::ghz(40),
        bench_circuits::ising(42),
        bench_circuits::qft(18),
    };

    ZacOptions opts;
    opts.sa_iterations = 400;

    struct Config
    {
        const char *label;
        Architecture arch;
    };
    std::vector<Config> configs;
    for (int aods = 1; aods <= 4; ++aods)
        configs.push_back(
            {aods == 1   ? "reference, 1 AOD"
             : aods == 2 ? "reference, 2 AODs"
             : aods == 3 ? "reference, 3 AODs"
                         : "reference, 4 AODs",
             presets::referenceZoned(aods)});
    configs.push_back({"small, 1 zone (6x10)", presets::multiZoneArch1()});
    configs.push_back({"small, 2 zones (3x10)", presets::multiZoneArch2()});

    std::printf("%-24s %10s %10s %10s %10s\n", "configuration",
                "ghz_n40", "ising_n42", "qft_n18", "workload");

    double best = 0.0;
    const char *best_label = nullptr;
    for (const Config &config : configs) {
        ZacCompiler compiler(config.arch, opts);
        std::vector<double> fidelities;
        std::printf("%-24s", config.label);
        for (const Circuit &circuit : workload) {
            const double f =
                compiler.compile(circuit).fidelity.total;
            fidelities.push_back(f);
            std::printf(" %10.4f", f);
        }
        const double g = geometricMean(fidelities);
        std::printf(" %10.4f\n", g);
        if (g > best) {
            best = g;
            best_label = config.label;
        }
        std::fflush(stdout);
    }

    std::printf("\nbest configuration for this workload: %s "
                "(geomean %.4f)\n",
                best_label, best);
    std::printf("Expected shape: the second AOD helps every circuit; "
                "the compact dual-zone layout wins only when the "
                "workload is movement-bound.\n");
    return 0;
}
