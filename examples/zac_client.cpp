/**
 * @file
 * zac_client: a small CLI client for the zac_serve daemon.
 *
 * Two modes:
 *  - submit (default): send JSONL submit records over POST /compile
 *    and print the streamed terminal records. Input is either raw
 *    JSONL (--in file, "-" = stdin) or a zac_batch manifest
 *    (--manifest f: the "jobs" array is expanded into submit lines,
 *    "repeat" included, and sent verbatim — the daemon resolves
 *    circuits and targets exactly like the manifest loader, so
 *    output records match zac_batch on the same manifest);
 *  - --healthz: GET /healthz and print the JSON body.
 *
 *   usage: zac_client [options]
 *     --host H       server host (default 127.0.0.1)
 *     --port P       server port (required)
 *     --healthz      health check instead of submitting
 *     --manifest f   expand a zac_batch manifest into submit lines
 *     --in f         read JSONL submit lines from f ("-" = stdin)
 *     --lane L       X-Zac-Lane header: interactive | batch
 *     --out f        write the response body to f (default stdout)
 *     --timeout S    socket timeout in seconds (default 300)
 *
 * Exit: 0 on HTTP 200 with a cleanly closed stream, 1 on any
 * HTTP/transport error, 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/logging.hpp"
#include "net/http.hpp"
#include "net/socket.hpp"

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: zac_client --port P [--host H] [--healthz]\n"
        "                  [--manifest f | --in f] [--lane L]\n"
        "                  [--out f] [--timeout S]\n");
}

/**
 * Parse an integer flag value, rejecting malformed, partial, or
 * out-of-range input with a diagnostic naming the flag (exit 2) —
 * `--port foo` must not escape as an uncaught std::invalid_argument.
 */
long long
intFlag(const char *flag, const std::string &value, long long lo,
        long long hi)
{
    long long v = 0;
    std::size_t used = 0;
    try {
        v = std::stoll(value, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != value.size() || value.empty() || v < lo || v > hi) {
        std::fprintf(stderr,
                     "zac_client: %s: invalid value '%s' (expected an "
                     "integer in [%lld, %lld])\n",
                     flag, value.c_str(), lo, hi);
        usage();
        std::exit(2);
    }
    return v;
}

/** Parse a real-valued flag, same contract as intFlag(). */
double
realFlag(const char *flag, const std::string &value)
{
    double v = 0.0;
    std::size_t used = 0;
    try {
        v = std::stod(value, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != value.size() || value.empty() || v < 0.0) {
        std::fprintf(stderr,
                     "zac_client: %s: invalid value '%s' (expected a "
                     "non-negative number)\n",
                     flag, value.c_str());
        usage();
        std::exit(2);
    }
    return v;
}

/** Expand a manifest's "jobs" array into JSONL submit lines. */
std::string
manifestToLines(const std::string &path)
{
    const zac::json::Value doc = zac::json::parseFile(path);
    if (!doc.contains("jobs"))
        zac::fatal("zac_client: manifest has no 'jobs' array");
    std::string out;
    for (const zac::json::Value &jv : doc.at("jobs").asArray()) {
        zac::json::Object line = jv.asObject();
        int repeat = 1;
        if (line.count("repeat")) {
            repeat = static_cast<int>(line.at("repeat").asInt());
            line.erase("repeat");
        }
        const std::string text = zac::json::Value(line).dump() + "\n";
        for (int r = 0; r < repeat; ++r)
            out += text;
    }
    return out;
}

std::string
readLines(const std::string &path)
{
    if (path == "-") {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        return ss.str();
    }
    std::ifstream in(path, std::ios::binary);
    if (!in)
        zac::fatal("zac_client: cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Split an HTTP response into (status code, body). */
int
splitResponse(const std::string &raw, std::string &body)
{
    const std::size_t head_end = raw.find("\r\n\r\n");
    if (head_end == std::string::npos || raw.size() < 12 ||
        raw.compare(0, 5, "HTTP/") != 0)
        return -1;
    const int status = std::atoi(raw.c_str() + 9);
    body = raw.substr(head_end + 4);
    return status;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    int port = 0;
    bool healthz = false;
    std::string manifest_path, in_path, lane, out_path;
    double timeout = 300.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "zac_client: %s needs a value\n",
                             flag);
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--host")
            host = next("--host");
        else if (arg == "--port")
            port = static_cast<int>(
                intFlag("--port", next("--port"), 1, 65535));
        else if (arg == "--healthz")
            healthz = true;
        else if (arg == "--manifest")
            manifest_path = next("--manifest");
        else if (arg == "--in")
            in_path = next("--in");
        else if (arg == "--lane")
            lane = next("--lane");
        else if (arg == "--out")
            out_path = next("--out");
        else if (arg == "--timeout")
            timeout = realFlag("--timeout", next("--timeout"));
        else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "zac_client: unknown option %s\n",
                         arg.c_str());
            usage();
            return 2;
        }
    }
    if (port <= 0 || port > 65535) {
        std::fprintf(stderr, "zac_client: --port is required\n");
        usage();
        return 2;
    }
    if (!healthz && manifest_path.empty() && in_path.empty()) {
        std::fprintf(stderr,
                     "zac_client: need --manifest, --in, or "
                     "--healthz\n");
        usage();
        return 2;
    }

    try {
        std::string request;
        if (healthz) {
            request = "GET /healthz HTTP/1.1\r\n"
                      "Host: " + host + "\r\n"
                      "Connection: close\r\n\r\n";
        } else {
            const std::string body =
                !manifest_path.empty() ? manifestToLines(manifest_path)
                                       : readLines(in_path);
            request = "POST /compile HTTP/1.1\r\n"
                      "Host: " + host + "\r\n"
                      "Content-Type: application/x-ndjson\r\n"
                      "Content-Length: " +
                      std::to_string(body.size()) + "\r\n";
            if (!lane.empty())
                request += "X-Zac-Lane: " + lane + "\r\n";
            request += "Connection: close\r\n\r\n" + body;
        }

        zac::net::Fd fd = zac::net::tcpConnect(
            host, static_cast<std::uint16_t>(port), timeout);
        if (!zac::net::sendAll(fd.get(), request.data(),
                               request.size()))
            zac::fatal("zac_client: send failed: " +
                       std::string(std::strerror(errno)));
        std::string raw;
        if (!zac::net::recvUntilClose(fd.get(), raw))
            zac::fatal("zac_client: receive failed: " +
                       std::string(std::strerror(errno)));

        std::string body;
        const int status = splitResponse(raw, body);
        if (status < 0)
            zac::fatal("zac_client: malformed HTTP response");

        if (out_path.empty()) {
            std::fwrite(body.data(), 1, body.size(), stdout);
        } else {
            std::ofstream out(out_path, std::ios::binary);
            if (!out)
                zac::fatal("zac_client: cannot write " + out_path);
            out << body;
        }
        if (status != 200) {
            std::fprintf(stderr, "zac_client: HTTP %d\n", status);
            return 1;
        }
        return 0;
    } catch (const zac::FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        // Backstop: never let a raw exception reach std::terminate.
        std::fprintf(stderr, "zac_client: unexpected error: %s\n",
                     e.what());
        return 1;
    }
}
