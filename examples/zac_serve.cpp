/**
 * @file
 * zac_serve: the network compile daemon.
 *
 * Serves the CompileService over a minimal HTTP/1.1 subset (see
 * src/net/server.hpp and docs/zac_serve.md):
 *
 *   POST /compile   JSONL submit records in, streamed JSONL terminal
 *                   records out (the zac_batch protocol, bytes and
 *                   all; X-Zac-Lane: interactive|batch picks the
 *                   admission lane)
 *   GET  /healthz   liveness + queue/cache/retry/uptime counters
 *
 * Compile targets come from the same JSON documents zac_batch reads:
 * the "targets" section of a manifest (any "jobs" section is
 * ignored); with no file, one default reference/full target.
 *
 *   usage: zac_serve [targets.json] [options]
 *     --host H            bind address (default 127.0.0.1)
 *     --port P            TCP port; 0 = ephemeral (default 8080)
 *     --workers N         worker threads (default: hw concurrency)
 *     --queue N           service queue bound (default 256)
 *     --cache N           result-cache entries, 0 disables
 *     --snapshot f        persist the result cache to f (warm starts)
 *     --retries N         transient-failure retries per job
 *     --backoff-ms X      first retry backoff, doubling per attempt
 *     --admission N       reject past N undelivered jobs (0 = block)
 *     --max-connections N connection cap, over-cap answered 503
 *     --read-timeout S    per-connection request read timeout
 *     --write-timeout S   per-connection response progress timeout
 *     --drain-timeout S   SIGTERM drain deadline (0 = wait)
 *     --interactive-weight N / --batch-weight N   lane WRR weights
 *     --no-zair           omit ZAIR programs from result records
 *
 * SIGTERM/SIGINT trigger a graceful drain: stop accepting, finish
 * admitted work, flush the cache snapshot, flush responses, exit 0
 * (exit 1 when the drain deadline forced cancellations).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/json.hpp"
#include "common/logging.hpp"
#include "net/server.hpp"
#include "service/manifest.hpp"

namespace
{

zac::net::CompileServer *g_server = nullptr;

extern "C" void
handleSignal(int)
{
    if (g_server != nullptr)
        g_server->requestDrain(); // async-signal-safe
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: zac_serve [targets.json] [--host H] [--port P]\n"
        "                 [--workers N] [--queue N] [--cache N]\n"
        "                 [--snapshot f] [--retries N]\n"
        "                 [--backoff-ms X] [--admission N]\n"
        "                 [--max-connections N] [--read-timeout S]\n"
        "                 [--write-timeout S] [--drain-timeout S]\n"
        "                 [--interactive-weight N] [--batch-weight N]\n"
        "                 [--no-zair]\n");
}

/**
 * Parse an integer flag value, rejecting malformed, partial, or
 * out-of-range input with a diagnostic naming the flag (exit 2).
 * std::stoi would otherwise escape main() as an uncaught
 * std::invalid_argument on e.g. `zac_serve --port foo`.
 */
long long
intFlag(const char *flag, const std::string &value, long long lo,
        long long hi)
{
    long long v = 0;
    std::size_t used = 0;
    try {
        v = std::stoll(value, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != value.size() || value.empty() || v < lo || v > hi) {
        std::fprintf(stderr,
                     "zac_serve: %s: invalid value '%s' (expected an "
                     "integer in [%lld, %lld])\n",
                     flag, value.c_str(), lo, hi);
        usage();
        std::exit(2);
    }
    return v;
}

/** Parse a real-valued flag, same contract as intFlag(). */
double
realFlag(const char *flag, const std::string &value)
{
    double v = 0.0;
    std::size_t used = 0;
    try {
        v = std::stod(value, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != value.size() || value.empty() || v < 0.0) {
        std::fprintf(stderr,
                     "zac_serve: %s: invalid value '%s' (expected a "
                     "non-negative number)\n",
                     flag, value.c_str());
        usage();
        std::exit(2);
    }
    return v;
}

/** Load compile targets from a manifest-style JSON document. */
std::vector<zac::service::CompileTarget>
loadTargets(const std::string &path)
{
    const zac::json::Value doc = zac::json::parseFile(path);
    std::vector<zac::service::CompileTarget> targets;
    if (doc.contains("targets")) {
        for (const zac::json::Value &tv : doc.at("targets").asArray())
            targets.push_back(zac::service::targetFromJson(tv));
        if (targets.empty())
            zac::fatal("zac_serve: 'targets' must not be empty");
    }
    return targets;
}

} // namespace

int
main(int argc, char **argv)
{
    using zac::net::CompileServer;
    using zac::net::ServerConfig;

    std::string targets_path;
    ServerConfig cfg;
    cfg.port = 8080;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "zac_serve: %s needs a value\n",
                             flag);
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--host")
            cfg.host = next("--host");
        else if (arg == "--port")
            cfg.port = static_cast<std::uint16_t>(
                intFlag("--port", next("--port"), 0, 65535));
        else if (arg == "--workers")
            cfg.service.num_workers = static_cast<int>(
                intFlag("--workers", next("--workers"), 1, 4096));
        else if (arg == "--queue")
            cfg.service.queue_capacity = static_cast<std::size_t>(
                intFlag("--queue", next("--queue"), 1, 1 << 24));
        else if (arg == "--cache")
            cfg.service.cache_capacity = static_cast<std::size_t>(
                intFlag("--cache", next("--cache"), 0, 1 << 24));
        else if (arg == "--snapshot")
            cfg.service.snapshot_path = next("--snapshot");
        else if (arg == "--retries")
            cfg.service.max_retries = static_cast<int>(
                intFlag("--retries", next("--retries"), 0, 1000));
        else if (arg == "--backoff-ms")
            cfg.service.retry_backoff_ms =
                realFlag("--backoff-ms", next("--backoff-ms"));
        else if (arg == "--admission")
            cfg.service.admission_high_water =
                static_cast<std::size_t>(intFlag(
                    "--admission", next("--admission"), 0, 1 << 24));
        else if (arg == "--max-connections")
            cfg.max_connections = static_cast<std::size_t>(
                intFlag("--max-connections",
                        next("--max-connections"), 0, 1 << 24));
        else if (arg == "--read-timeout")
            cfg.read_timeout_seconds =
                realFlag("--read-timeout", next("--read-timeout"));
        else if (arg == "--write-timeout")
            cfg.write_timeout_seconds =
                realFlag("--write-timeout", next("--write-timeout"));
        else if (arg == "--drain-timeout")
            cfg.drain_deadline_seconds =
                realFlag("--drain-timeout", next("--drain-timeout"));
        else if (arg == "--interactive-weight")
            cfg.interactive_weight = static_cast<int>(
                intFlag("--interactive-weight",
                        next("--interactive-weight"), 1, 1 << 20));
        else if (arg == "--batch-weight")
            cfg.batch_weight = static_cast<int>(intFlag(
                "--batch-weight", next("--batch-weight"), 1, 1 << 20));
        else if (arg == "--no-zair")
            cfg.include_zair = false;
        else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "zac_serve: unknown option %s\n",
                         arg.c_str());
            usage();
            return 2;
        } else if (targets_path.empty()) {
            targets_path = arg;
        } else {
            usage();
            return 2;
        }
    }

    try {
        std::vector<zac::service::CompileTarget> targets;
        if (!targets_path.empty())
            targets = loadTargets(targets_path);
        if (targets.empty()) {
            // Mirrors the manifest loader's default target
            // (reference arch, full preset).
            targets.push_back(zac::service::targetFromJson(
                zac::json::Value(zac::json::Object{})));
        }

        CompileServer server(std::move(targets), cfg);
        const std::uint16_t port = server.listen();

        g_server = &server;
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_handler = handleSignal;
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);

        // The smoke script and the churn bench parse this line to
        // discover the ephemeral port — keep the format stable.
        std::printf("zac_serve: listening on %s:%u\n",
                    cfg.host.c_str(), static_cast<unsigned>(port));
        std::fflush(stdout);

        const bool clean = server.run();
        g_server = nullptr;

        const zac::net::NetStats stats = server.netStats();
        std::fprintf(stderr,
                     "zac_serve: drained (%s): %llu connections, "
                     "%llu records streamed\n",
                     clean ? "clean" : "deadline forced",
                     static_cast<unsigned long long>(
                         stats.connections_accepted),
                     static_cast<unsigned long long>(
                         stats.records_streamed));
        return clean ? 0 : 1;
    } catch (const zac::FatalError &e) {
        std::fprintf(stderr, "zac_serve: fatal: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        // Backstop: nothing below main() should leak a raw exception
        // (filesystem errors, bad_alloc, ...), but if it does, die
        // with a message instead of std::terminate.
        std::fprintf(stderr, "zac_serve: unexpected error: %s\n",
                     e.what());
        return 2;
    }
}
