/**
 * @file
 * Quickstart: build a circuit, compile it with ZAC for the reference
 * zoned architecture, inspect the fidelity report, and write the ZAIR
 * program to JSON.
 *
 *   $ ./quickstart [output.json]
 */

#include <cstdio>
#include <string>

#include "arch/presets.hpp"
#include "circuit/circuit.hpp"
#include "core/compiler.hpp"
#include "zair/serialize.hpp"

int
main(int argc, char **argv)
{
    using namespace zac;

    // 1. Describe the hardware. presets::referenceZoned() is the
    //    paper's Fig. 2 machine: a 100x100-trap storage zone and a
    //    7x20-site entanglement zone; loadArchitecture() reads the
    //    same JSON format as the paper's Fig. 20.
    const Architecture arch = presets::referenceZoned();
    std::printf("architecture '%s': %d Rydberg sites, %d storage "
                "traps, %zu AOD(s)\n",
                arch.name().c_str(), arch.numSites(),
                arch.numStorageTraps(), arch.aods().size());

    // 2. Build a circuit with the fluent API (any qelib1 gate works;
    //    ZAC lowers everything to the hardware's {CZ, U3} set).
    Circuit circuit(8, "quickstart_ghz8");
    circuit.h(0);
    for (int q = 0; q + 1 < circuit.numQubits(); ++q)
        circuit.cx(q, q + 1);

    // 3. Compile. ZacOptions selects the placement techniques; the
    //    defaults enable everything the paper's full ZAC uses.
    ZacCompiler compiler(arch, ZacOptions::full());
    const ZacResult result = compiler.compile(circuit);

    // 4. Inspect the result.
    const FidelityBreakdown &f = result.fidelity;
    std::printf("\ncompiled '%s' in %.3f s\n",
                circuit.name().c_str(), result.compile_seconds);
    std::printf("  Rydberg stages   %d\n",
                result.staged.numRydbergStages());
    std::printf("  qubit reuses     %d\n", result.plan.reused_qubits);
    std::printf("  2Q gates         %d    1Q gates %d\n", f.g2, f.g1);
    std::printf("  atom transfers   %d\n", f.n_transfer);
    std::printf("  duration         %.2f ms\n",
                f.duration_us / 1000.0);
    std::printf("  fidelity         %.4f  (2Q %.4f, 1Q %.4f, "
                "transfer %.4f, decoherence %.4f)\n",
                f.total, f.f_2q, f.f_1q, f.f_transfer,
                f.f_decoherence);

    // 5. Persist the timed ZAIR program (paper Sec. IX format).
    const std::string path =
        argc > 1 ? argv[1] : "quickstart_zair.json";
    saveZairProgram(path, result.program);
    std::printf("\nZAIR program written to %s (%zu instructions)\n",
                path.c_str(), result.program.instrs.size());
    return 0;
}
